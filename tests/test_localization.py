"""Boolean-tomography fault localization (:mod:`repro.tomography.localization`).

Unit-level: divergence pair splitting, coverage ranking, honest ambiguity
on serial links, graceful degradation when there is no baseline or no
post-onset measurement, and the per-epoch re-localization used by
migrating failures.  Acceptance-level: the LINK-BLACKOUT scenario names
its true bottleneck at rank 1, and MIGRATING-BOTTLENECK re-localizes the
relocated failure in every epoch.
"""

import pytest

from repro.network.routing import RoutingTable
from repro.scenarios import get_scenario
from repro.tomography.localization import (
    DIVERGENCE_RATIO,
    localize_epochs,
    localize_failure,
    rank_candidates,
)

#: Per-host completion snapshot of a healthy dumbbell iteration.
HEALTHY = {f"{side}-{i}": 1.0 for side in ("left", "right") for i in range(3)}

#: The right-hand cluster slowed 10x: the signature of the shared
#: ``bottleneck`` link collapsing.
RIGHT_SLOW = {h: (10.0 if h.startswith("right") else 1.0) for h in HEALTHY}


class TestRanking:
    def test_cut_link_dominates_ranking(self, routing):
        lefts = [f"left-{i}" for i in range(3)]
        rights = [f"right-{i}" for i in range(3)]
        affected = [(a, b) for a in lefts for b in rights]
        clean = [(lefts[0], lefts[1]), (rights[0], rights[1])]
        scored = rank_candidates(affected, clean, routing)
        assert scored[0]["link"] == "bottleneck"
        assert scored[0]["affected_hits"] == 9
        assert scored[0]["clean_hits"] == 0
        # Every host uplink explains only its own pairs and also sits on
        # a clean intra-cluster route: strictly worse.
        assert all(c["score"] < scored[0]["score"] for c in scored[1:])

    def test_ranking_is_deterministic(self, routing):
        affected = [("left-0", "right-0")]
        a = rank_candidates(affected, [], routing)
        b = rank_candidates(affected, [], routing)
        assert a == b
        assert [c["link"] for c in a] == sorted(
            (c["link"] for c in a),
            key=lambda n: (-next(x["score"] for x in a if x["link"] == n), n),
        )


class TestLocalizeFailure:
    def test_names_the_cut_link(self, routing):
        out = localize_failure(
            [HEALTHY, HEALTHY, RIGHT_SLOW, RIGHT_SLOW],
            [1.0, 1.0, 9.0, 9.0],
            onset=2,
            routing=routing,
            truth_link="bottleneck",
        )
        assert out["localization_status"] == "named"
        assert out["localized_link"] == "bottleneck"
        assert out["localization_rank"] == 1
        assert out["affected_pairs"] == 9
        assert out["measured_pairs"] == 15

    def test_time_to_localize_charges_post_onset_measurements(self, routing):
        out = localize_failure(
            [HEALTHY, HEALTHY, RIGHT_SLOW, RIGHT_SLOW],
            [1.0, 1.0, 9.0, 8.0],
            onset=2,
            routing=routing,
        )
        # The very first post-onset iteration is already decisive.
        assert out["iterations_to_localize"] == 1
        assert out["time_to_localize_s"] == pytest.approx(9.0)

    def test_serial_links_degrade_to_ambiguous(self, line_topology):
        # a, b -- s1 --trunk-- s2 -- c: when c slows, the trunk and c's
        # uplink are crossed by exactly the same pairs, so boolean
        # tomography cannot tell them apart and must not pretend to.
        routing = RoutingTable(line_topology)
        healthy = {"a": 1.0, "b": 1.0, "c": 1.0}
        c_slow = {"a": 1.0, "b": 1.0, "c": 10.0}
        out = localize_failure(
            [healthy, c_slow], [1.0, 9.0], onset=1, routing=routing,
            truth_link="trunk",
        )
        assert out["localization_status"] == "ambiguous"
        assert out["localized_link"] is None
        top = out["localization_candidates"][:2]
        assert {c["link"] for c in top} == {"trunk", "c--s2"}
        # The true link shares the best (competition) rank with its twin.
        assert out["localization_rank"] == 1
        assert out["time_to_localize_s"] is None

    def test_no_divergence_when_nothing_slowed(self, routing):
        out = localize_failure(
            [HEALTHY, HEALTHY], [1.0, 1.0], onset=1, routing=routing
        )
        assert out["localization_status"] == "no-divergence"
        assert out["localization_candidates"] == []

    def test_uniform_slowdown_is_not_a_cut(self, routing):
        # Everyone 10x slower (congestion, not a link failure): no pair
        # *diverges*, so no link is blamed.
        all_slow = {h: 10.0 for h in HEALTHY}
        out = localize_failure(
            [HEALTHY, all_slow], [1.0, 9.0], onset=1, routing=routing
        )
        assert out["localization_status"] == "no-divergence"

    def test_degrades_without_baseline(self, routing):
        out = localize_failure([RIGHT_SLOW], [9.0], onset=0, routing=routing)
        assert out["localization_status"] == "no-baseline"
        assert out["localized_link"] is None

    def test_degrades_without_measurements(self, routing):
        out = localize_failure(
            [HEALTHY, None, None], [1.0, None, None], onset=1, routing=routing
        )
        assert out["localization_status"] == "no-measurements"

    def test_lost_iterations_are_skipped(self, routing):
        out = localize_failure(
            [HEALTHY, HEALTHY, None, RIGHT_SLOW],
            [1.0, 1.0, None, 9.0],
            onset=2,
            routing=routing,
        )
        assert out["localization_status"] == "named"
        assert out["localized_link"] == "bottleneck"
        assert out["time_to_localize_s"] == pytest.approx(9.0)

    def test_divergence_ratio_is_tunable(self, routing):
        mild = {h: (1.3 if h.startswith("right") else 1.0) for h in HEALTHY}
        default = localize_failure(
            [HEALTHY, mild], [1.0, 1.3], onset=1, routing=routing
        )
        assert default["localization_status"] == "no-divergence"
        sensitive = localize_failure(
            [HEALTHY, mild], [1.0, 1.3], onset=1, routing=routing, ratio=1.2
        )
        assert sensitive["localization_status"] == "named"
        assert DIVERGENCE_RATIO == 1.5


class TestLocalizeEpochs:
    def test_epoch_windows_and_baseline_anchor(self, routing):
        left_slow = {
            h: (10.0 if h.startswith("left") else 1.0) for h in HEALTHY
        }
        verdicts = localize_epochs(
            [HEALTHY, HEALTHY, RIGHT_SLOW, RIGHT_SLOW, left_slow, left_slow],
            [1.0, 1.0, 9.0, 9.0, 9.0, 9.0],
            onsets=[2, 4],
            routing=routing,
        )
        assert [v["epoch"] for v in verdicts] == [0, 1]
        assert [(v["onset_iteration"], v["end_iteration"]) for v in verdicts] \
            == [(2, 4), (4, 6)]
        # Both epochs are judged against the pre-first-onset baseline, so
        # the relocated failure localizes even though iterations 2..3
        # were themselves unhealthy.
        assert all(v["localization_status"] == "named" for v in verdicts)
        assert verdicts[0]["localized_link"] == "bottleneck"
        assert verdicts[1]["localized_link"] == "bottleneck"

    def test_onsets_must_increase(self, routing):
        with pytest.raises(ValueError, match="strictly increasing"):
            localize_epochs([HEALTHY], [1.0], onsets=[2, 2], routing=routing)


# ---------------------------------------------------------------------- #
# acceptance: the fault-injection scenarios name their true links
# ---------------------------------------------------------------------- #
class TestScenarioAcceptance:
    def test_link_blackout_names_true_link_at_rank_one(self):
        summary = get_scenario("LINK-BLACKOUT").run(
            iterations=4, num_fragments=150, per_site=3
        )
        assert summary["localization_status"] == "named"
        assert summary["localized_link"] == "bordeaux.bordeplage.bottleneck"
        assert summary["true_link"] == "bordeaux.bordeplage.bottleneck"
        assert summary["localization_rank"] == 1
        assert summary["time_to_localize_s"] > 0
        assert summary["detected"]

    def test_migrating_bottleneck_relocalizes_every_epoch(self):
        summary = get_scenario("MIGRATING-BOTTLENECK").run(
            iterations=6, num_fragments=150, per_site=3
        )
        epochs = summary["epochs"]
        assert len(epochs) == 2
        for epoch in epochs:
            assert epoch["detected"], epoch
            assert epoch["localization_rank"] is not None
            assert epoch["localization_rank"] <= 3, epoch
        # The failure moved; the verdict must move with it.
        assert epochs[0]["true_link"] == "bordeaux.bordeplage.bottleneck"
        assert epochs[1]["true_link"] == \
            "bordeaux.bordereau.switch--bordeaux.router"
        assert epochs[1]["localized_link"] == epochs[1]["true_link"]
        # Headline metrics aggregate across epochs.
        assert summary["localization_rank"] == max(
            e["localization_rank"] for e in epochs
        )
        assert summary["time_to_localize_s"] == pytest.approx(
            sum(e["time_to_localize_s"] for e in epochs)
        )

    def test_rerouting_survives_the_blackout(self):
        # The migrating scenario's substrate carries a dormant backup
        # link; with rerouting on, post-onset iterations stay within an
        # order of magnitude of healthy ones instead of collapsing.
        summary = get_scenario("MIGRATING-BOTTLENECK").run(
            iterations=6, num_fragments=150, per_site=3
        )
        assert summary["time_to_detect_s"] is not None
        assert summary["time_to_detect_s"] < 5.0
