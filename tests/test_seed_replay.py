"""Bit-for-bit seed-replay regression tests for the vectorized swarm.

The golden fingerprints below were generated with the original scalar
implementation (dict/set swarm loop + scalar allocator) before the
vectorized refactor.  A broadcast with the same topology, torrent and RNG
seed must reproduce the *identical* fragment matrix: the refactor is a pure
performance change, and any drift in candidate ordering, rate arithmetic
tolerances or random-stream consumption shows up here immediately.

The goldens are versioned per control-loop stepping mode (``GOLDENS`` maps
``stepping -> scenario -> sha256``), as the ROADMAP's event-driven item
required.  The event-stepped loop is *anchored* — byte state between control
points is an analytic function of the last transition, never a per-tick
accumulation — so both modes consume the random stream identically and the
two golden columns are the same values: the event refactor preserved the
original scalar fingerprints exactly.  If a future change has to break one
column, re-pin it here and record why in docs/simulation.md.

The three scenarios cover the distinct control paths: a multi-site WAN
broadcast (TCP-window rate caps), a single-site broadcast across the
Bordeaux bottleneck, and a long broadcast with frequent rechokes so the
tit-for-tat choker, optimistic rotation and idle-slot filling all consume
the random stream.
"""

import hashlib

import numpy as np
import pytest

from repro.bittorrent.swarm import STEPPING_MODES, BitTorrentBroadcast, SwarmConfig
from repro.network.grid5000 import (
    build_bordeaux_site,
    build_multi_site,
    default_cluster_of,
)

#: Pinned sha256 fingerprints, one column per stepping mode.
GOLDENS = {
    "fixed": {
        "multi-site": (
            "710d64c7a3d173b303ca281719138a6dd4b4b8120c08dc67d4be8343d5af4e76"
        ),
        "bordeaux": (
            "5bb186984a0dab848081eae4ed26584934e6540c61e370a1c375f013142233eb"
        ),
        "rechoke-heavy": (
            "86fd2346fdd63e59d6449fa8d589be80e71702c28907d6b7c6c6c4c86aa6167c"
        ),
    },
    "event": {
        "multi-site": (
            "710d64c7a3d173b303ca281719138a6dd4b4b8120c08dc67d4be8343d5af4e76"
        ),
        "bordeaux": (
            "5bb186984a0dab848081eae4ed26584934e6540c61e370a1c375f013142233eb"
        ),
        "rechoke-heavy": (
            "86fd2346fdd63e59d6449fa8d589be80e71702c28907d6b7c6c6c4c86aa6167c"
        ),
    },
}


def broadcast_fingerprint(topology, num_fragments, seed, **config_kwargs):
    """Run one broadcast and hash its labels + integer fragment matrix."""
    from repro.bittorrent.torrent import TorrentMeta

    meta = TorrentMeta(
        name="golden", fragment_size=16384, num_fragments=num_fragments
    )
    config = SwarmConfig(torrent=meta, **config_kwargs)
    broadcast = BitTorrentBroadcast(topology, config)
    result = broadcast.run(rng=np.random.default_rng(seed))
    counts = result.fragments.counts.astype(np.int64)
    digest = hashlib.sha256()
    digest.update(("|".join(result.fragments.labels)).encode())
    digest.update(counts.tobytes())
    return digest.hexdigest(), result


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_multi_site_broadcast_replays_scalar_implementation(stepping):
    topology = build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )
    fingerprint, result = broadcast_fingerprint(
        topology, 80, seed=73, stepping=stepping
    )
    assert fingerprint == GOLDENS[stepping]["multi-site"]
    assert result.stepping == stepping
    assert result.fragments.total_fragments() == 560.0
    assert result.distinct_edges == 7
    assert result.duration == pytest.approx(0.2)


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_bordeaux_bottleneck_broadcast_replays_scalar_implementation(stepping):
    topology = build_bordeaux_site(bordeplage=5, bordereau=4, borderline=2)
    fingerprint, result = broadcast_fingerprint(
        topology, 120, seed=2012, stepping=stepping
    )
    assert fingerprint == GOLDENS[stepping]["bordeaux"]
    assert result.fragments.total_fragments() == 1200.0
    assert result.distinct_edges == 13


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_rechoke_heavy_broadcast_replays_scalar_implementation(stepping):
    """Short rechoke interval: tit-for-tat and optimistic slots churn hard."""
    topology = build_bordeaux_site(bordeplage=5, bordereau=4, borderline=2)
    fingerprint, result = broadcast_fingerprint(
        topology, 2000, seed=99, rechoke_interval=0.3, optimistic_every=2,
        stepping=stepping,
    )
    assert fingerprint == GOLDENS[stepping]["rechoke-heavy"]
    assert result.fragments.total_fragments() == 20000.0
    assert result.distinct_edges == 51


def batched_lane_fingerprints(topology, num_fragments, seeds, **config_kwargs):
    """Run seeds as lanes of one batched lock-step run; hash each lane."""
    from repro.bittorrent.batched import BatchedBroadcast
    from repro.bittorrent.torrent import TorrentMeta

    meta = TorrentMeta(
        name="golden", fragment_size=16384, num_fragments=num_fragments
    )
    config = SwarmConfig(torrent=meta, **config_kwargs)
    engine = BatchedBroadcast(topology, config)
    results = engine.run_many(
        [(None, np.random.default_rng(seed)) for seed in seeds]
    )
    fingerprints = []
    for result in results:
        counts = result.fragments.counts.astype(np.int64)
        digest = hashlib.sha256()
        digest.update(("|".join(result.fragments.labels)).encode())
        digest.update(counts.tobytes())
        fingerprints.append(digest.hexdigest())
    return fingerprints, results


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_batched_lanes_replay_every_scalar_golden(stepping):
    """Extracting any single lane of a batched run reproduces the pinned
    scalar fingerprints bit for bit: the batched engine is a pure execution
    strategy, not a new measurement semantics.  The golden seed runs as lane
    0 with other seeds alongside, so the cross-lane interest matmul really
    sees a full-width batch; a sibling lane is additionally cross-checked
    against its own scalar replay."""
    topology = build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )
    fingerprints, results = batched_lane_fingerprints(
        topology, 80, seeds=(73, 7, 41), stepping=stepping
    )
    assert fingerprints[0] == GOLDENS[stepping]["multi-site"]
    assert [r.batch_width for r in results] == [3, 3, 3]
    sibling, _ = broadcast_fingerprint(topology, 80, seed=7, stepping=stepping)
    assert fingerprints[1] == sibling

    topology = build_bordeaux_site(bordeplage=5, bordereau=4, borderline=2)
    fingerprints, _ = batched_lane_fingerprints(
        topology, 120, seeds=(2012, 5, 99), stepping=stepping
    )
    assert fingerprints[0] == GOLDENS[stepping]["bordeaux"]

    fingerprints, _ = batched_lane_fingerprints(
        topology, 2000, seeds=(99, 2012), rechoke_interval=0.3,
        optimistic_every=2, stepping=stepping,
    )
    assert fingerprints[0] == GOLDENS[stepping]["rechoke-heavy"]


def test_golden_columns_coincide():
    """The anchored event refactor did not fork the measurement semantics:
    the per-mode golden columns are pinned to the same fingerprints."""
    assert GOLDENS["fixed"] == GOLDENS["event"]


def test_same_seed_is_deterministic_across_runs():
    """Two runs from the same seed produce identical matrices."""
    topology = build_bordeaux_site(bordeplage=3, bordereau=3, borderline=2)
    first, _ = broadcast_fingerprint(topology, 60, seed=5)
    second, _ = broadcast_fingerprint(topology, 60, seed=5)
    assert first == second


def test_interest_bookkeeping_modes_agree(monkeypatch):
    """The per-step matmul and the incremental interest updates are the same
    computation; forcing the incremental path must not change the result."""
    import repro.bittorrent.swarm as swarm_module

    topology = build_bordeaux_site(bordeplage=3, bordereau=3, borderline=2)
    baseline, _ = broadcast_fingerprint(topology, 60, seed=11)

    monkeypatch.setattr(swarm_module, "MATMUL_INTEREST_LIMIT", 0)
    incremental, _ = broadcast_fingerprint(topology, 60, seed=11)
    assert incremental == baseline


# ---------------------------------------------------------------------- #
# multi-tenant workload replay (PR 4)
# ---------------------------------------------------------------------- #
def workload_broadcast_fingerprint(topology, num_fragments, seed, **config_kwargs):
    """The GOLDENS fingerprint computed through the one-actor workload path."""
    from repro.bittorrent.torrent import TorrentMeta
    from repro.workloads import BroadcastActor, WorkloadEngine

    meta = TorrentMeta(
        name="golden", fragment_size=16384, num_fragments=num_fragments
    )
    config = SwarmConfig(torrent=meta, **config_kwargs)
    engine = WorkloadEngine(topology)
    primary = engine.add(
        BroadcastActor("primary", config, rng=np.random.default_rng(seed))
    )
    engine.run()
    result = primary.result
    counts = result.fragments.counts.astype(np.int64)
    digest = hashlib.sha256()
    digest.update(("|".join(result.fragments.labels)).encode())
    digest.update(counts.tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_one_actor_workload_replays_the_single_broadcast_goldens(stepping):
    """The standalone loop is now the degenerate one-actor workload: driving
    a broadcast through the shared workload engine (its simulator agenda and
    shared fluid network) must reproduce the pinned scalar-era fingerprints
    bit for bit."""
    topology = build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )
    fingerprint = workload_broadcast_fingerprint(
        topology, 80, seed=73, stepping=stepping
    )
    assert fingerprint == GOLDENS[stepping]["multi-site"]

    topology = build_bordeaux_site(bordeplage=5, bordereau=4, borderline=2)
    fingerprint = workload_broadcast_fingerprint(
        topology, 120, seed=2012, stepping=stepping
    )
    assert fingerprint == GOLDENS[stepping]["bordeaux"]

    fingerprint = workload_broadcast_fingerprint(
        topology, 2000, seed=99, rechoke_interval=0.3, optimistic_every=2,
        stepping=stepping,
    )
    assert fingerprint == GOLDENS[stepping]["rechoke-heavy"]


#: Pinned campaign fingerprints for one scenario per interference family
#: (G-T at per_site=3, 150 fragments, 2 iterations, seed 2012).  Both
#: stepping modes must reproduce the same hashes: the interference wakeups
#: keep the event mode exact in a changing network.
INTERFERENCE_GOLDENS = {
    "rival": "39e14ea1a531976b25add05b51a6a1c74399a005174e0bbef025966bb152810f",
    "cross": "3509570ef7bc58ce111bd3d86360b397d2249941814fcf778c4d0ac316488b0c",
    "churn": "7fca60aa6380075fe2058a15342f015bcea1320b96d607b17dddb2147fd59146",
}


def interference_workload(family):
    from repro.workloads import (
        churn_workload,
        cross_traffic_workload,
        rival_broadcast_workload,
    )

    return {
        "rival": lambda: rival_broadcast_workload(rivals=1, stagger=0.25),
        "cross": lambda: cross_traffic_workload(intensity=0.75, sources=2),
        "churn": lambda: churn_workload(churn_rate=2.0),
    }[family]()


def campaign_fingerprint(stepping, workload=None, faults=None):
    """sha256 over a two-iteration G-T campaign (per_site=3, 150 fragments,
    seed 2012) — the shared fingerprint of the interference/fault goldens."""
    from repro.experiments.datasets import dataset
    from repro.tomography.measurement import MeasurementCampaign
    from repro.tomography.pipeline import default_swarm_config

    ds = dataset("G-T", per_site=3)
    config = default_swarm_config(150, stepping=stepping)
    record = MeasurementCampaign(
        ds.topology,
        config,
        hosts=ds.hosts,
        seed=2012,
        workload=workload,
        faults=faults,
    ).run(2)
    digest = hashlib.sha256()
    for result in record.results:
        digest.update(("|".join(result.fragments.labels)).encode())
        digest.update(result.fragments.counts.astype(np.int64).tobytes())
    return digest.hexdigest()


@pytest.mark.parametrize("stepping", STEPPING_MODES)
@pytest.mark.parametrize("family", sorted(INTERFERENCE_GOLDENS))
def test_interference_campaigns_replay_their_goldens(family, stepping):
    """Multi-tenant campaigns replay bit-for-bit from their seed, in both
    stepping modes: the per-actor RNG streams are derived statelessly from
    (seed, "workload", iteration, label) and the shared-clock interleaving
    is deterministic."""
    fingerprint = campaign_fingerprint(
        stepping, workload=interference_workload(family)
    )
    assert fingerprint == INTERFERENCE_GOLDENS[family]


# ---------------------------------------------------------------------- #
# fault-injection replay (PR 6)
# ---------------------------------------------------------------------- #
#: Pinned campaign fingerprints under injected faults (same G-T campaign as
#: INTERFERENCE_GOLDENS).  Fault actors draw from stateless
#: (seed, "fault", iteration, label) streams, so campaigns under failure
#: replay bit-for-bit in both stepping modes.
FAULT_GOLDENS = {
    "link-failure": (
        "3112f50bbb650b6f327c05d2a058ff8f16189aae1a8a1c52a8f7fa48950abbd1"
    ),
    "blackout": (
        "40e68ce9c94ee2433465b1a142b1d808817ef47a5b24f3bc7380371fcf5a0324"
    ),
    "chaos": (
        "ead717e92ef73e49b6b9135f9fd31fc0d7667c4621fe8a9c53c1d14be1b0d5ac"
    ),
}


def fault_plan(family):
    from repro.faults import blackout_plan, chaos_plan, link_failure_plan

    return {
        "link-failure": lambda: link_failure_plan(intensity=1.0),
        "blackout": lambda: blackout_plan(from_iteration=1),
        "chaos": lambda: chaos_plan(intensity=1.0),
    }[family]()


@pytest.mark.parametrize("stepping", STEPPING_MODES)
@pytest.mark.parametrize("family", sorted(FAULT_GOLDENS))
def test_fault_campaigns_replay_their_goldens(family, stepping):
    """Campaigns under injected failure replay bit-for-bit from their seed,
    in both stepping modes."""
    fingerprint = campaign_fingerprint(stepping, faults=fault_plan(family))
    assert fingerprint == FAULT_GOLDENS[family]


# ---------------------------------------------------------------------- #
# telemetry neutrality (PR 9)
# ---------------------------------------------------------------------- #
@pytest.fixture
def full_tracing(tmp_path):
    """Enable full-detail tracing for the test, then restore the no-op state.

    Full detail is deliberately the level under test: it emits the
    per-control-step records (jumps, conversion passes, fluid transitions,
    workload dispatches), so any accidental RNG draw or clock perturbation
    in the hottest instrumentation path would surface here.
    """
    from repro.observability.tracer import TRACER

    trace_path = tmp_path / "replay.jsonl"
    TRACER.configure(str(trace_path), detail="full")
    yield trace_path
    TRACER.close()


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_tracing_preserves_the_classic_goldens(full_tracing, stepping):
    """Telemetry only *reads* state: with full tracing on, the scalar and
    batched broadcasts reproduce their pinned fingerprints bit for bit."""
    topology = build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )
    fingerprint, _ = broadcast_fingerprint(topology, 80, seed=73, stepping=stepping)
    assert fingerprint == GOLDENS[stepping]["multi-site"]

    fingerprints, _ = batched_lane_fingerprints(
        topology, 80, seeds=(73, 7, 41), stepping=stepping
    )
    assert fingerprints[0] == GOLDENS[stepping]["multi-site"]

    # The trace actually recorded the work it watched.
    from repro.observability.tracer import TRACER

    TRACER.flush()
    lines = full_tracing.read_text().splitlines()
    assert len(lines) > 1


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_tracing_preserves_the_workload_and_fault_goldens(full_tracing, stepping):
    """Full tracing across the workload engine, fault actors, executors and
    pipeline leaves every campaign family's fingerprint untouched."""
    topology = build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )
    fingerprint = workload_broadcast_fingerprint(
        topology, 80, seed=73, stepping=stepping
    )
    assert fingerprint == GOLDENS[stepping]["multi-site"]

    fingerprint = campaign_fingerprint(
        stepping, workload=interference_workload("churn")
    )
    assert fingerprint == INTERFERENCE_GOLDENS["churn"]

    fingerprint = campaign_fingerprint(stepping, faults=fault_plan("chaos"))
    assert fingerprint == FAULT_GOLDENS["chaos"]

    # Fault events made it into the trace, stamped on the simulation clock.
    import json

    from repro.observability.tracer import TRACER

    TRACER.flush()
    records = [
        json.loads(line) for line in full_tracing.read_text().splitlines()
    ]
    fault_events = [
        r for r in records if r.get("name", "").startswith("fault.")
    ]
    assert fault_events
    assert all("sim_ts" in r for r in fault_events)


@pytest.mark.parametrize("stepping", STEPPING_MODES)
def test_empty_fault_plan_replays_the_faultless_goldens(stepping):
    """The acceptance gate of the fault subsystem: an *empty* FaultPlan is a
    bitwise no-op — the campaign fingerprint equals the plain campaign's,
    and the workload path still reproduces the scalar-era broadcast
    goldens."""
    from repro.faults import NO_FAULTS

    assert campaign_fingerprint(stepping) == campaign_fingerprint(
        stepping, faults=NO_FAULTS
    )

    topology = build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )
    fingerprint = workload_broadcast_fingerprint(
        topology, 80, seed=73, stepping=stepping
    )
    assert fingerprint == GOLDENS[stepping]["multi-site"]
