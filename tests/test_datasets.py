"""Tests for the named experiment datasets."""

import pytest

from repro.experiments.datasets import (
    DATASETS,
    dataset,
    dataset_2x2,
    dataset_b,
    dataset_bgt,
    dataset_bgtl,
    dataset_bt,
    dataset_gt,
    dataset_nested,
    nested_coarse_ground_truth,
    scaled_builder,
)
from repro.network.grid5000 import (
    BORDEAUX_BOTTLENECK_CAPACITY,
    RENATER_CAPACITY,
)


class TestRegistry:
    def test_all_paper_datasets_present(self):
        assert set(DATASETS) == {"2x2", "B", "B-T", "G-T", "B-G-T", "B-G-T-L"}

    def test_lookup_by_name(self):
        ds = dataset("G-T", per_site=4)
        assert ds.name == "G-T"
        assert ds.num_hosts == 8

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            dataset("X-Y-Z")


class TestDatasetShapes:
    def test_2x2(self):
        ds = dataset_2x2()
        assert ds.num_hosts == 4
        assert ds.ground_truth.num_clusters == 1
        assert ds.expectation.expected_clusters == 1

    def test_b_default_is_the_paper_64_node_setup(self):
        ds = dataset_b()
        assert ds.num_hosts == 64
        assert ds.ground_truth.num_clusters == 2
        sizes = sorted(ds.ground_truth.sizes())
        assert sizes == [32, 32]  # Bordeplage vs Bordereau+Borderline

    def test_b_scaled(self):
        ds = dataset_b(bordeplage=8, bordereau=6, borderline=2)
        assert ds.num_hosts == 16
        assert ds.ground_truth.num_clusters == 2

    def test_bt_has_three_way_ground_truth(self):
        ds = dataset_bt(per_site=8)
        assert ds.num_hosts == 16
        assert ds.ground_truth.num_clusters == 3
        assert ds.expectation.expected_clusters == 2  # what the method finds

    def test_gt_two_flat_sites(self):
        ds = dataset_gt(per_site=6)
        assert ds.num_hosts == 12
        assert ds.ground_truth.num_clusters == 2
        sites = {ds.site_of[h] for h in ds.hosts}
        assert sites == {"grenoble", "toulouse"}

    def test_bgt_three_sites(self):
        ds = dataset_bgt(per_site=4)
        assert ds.ground_truth.num_clusters == 3
        assert {ds.site_of[h] for h in ds.hosts} == {"bordeaux", "grenoble", "toulouse"}

    def test_bgtl_four_sites(self):
        ds = dataset_bgtl(per_site=4)
        assert ds.ground_truth.num_clusters == 4
        assert ds.expectation.paper_iterations_to_converge == 15

    def test_bgt_uses_only_well_connected_bordeaux_clusters(self):
        ds = dataset_bgt(per_site=8)
        bordeaux_clusters = {
            ds.topology.host(h).cluster for h in ds.hosts if ds.site_of[h] == "bordeaux"
        }
        assert "bordeplage" not in bordeaux_clusters

    def test_ground_truth_covers_every_host(self):
        for name in DATASETS:
            ds = dataset(name) if name in ("2x2",) else dataset(name, per_site=4) if name != "B" else dataset_b(4, 3, 1)
            assert set(ds.hosts) <= ds.ground_truth.nodes() | set(ds.hosts)
            assert ds.ground_truth.nodes() == set(ds.hosts)

    def test_local_cluster_of(self):
        ds = dataset_gt(per_site=4)
        host = ds.hosts[0]
        local = ds.local_cluster_of(host)
        assert host not in local
        assert all(ds.ground_truth.same_cluster(host, other) for other in local)


class TestNestedDataset:
    def test_shape_and_ground_truths(self):
        from repro.experiments.datasets import dataset_nested, nested_coarse_ground_truth

        ds = dataset_nested(alpha=4, beta=4, gamma=6)
        assert ds.num_hosts == 14
        assert ds.ground_truth.num_clusters == 3
        coarse = nested_coarse_ground_truth(ds)
        assert coarse.num_clusters == 2
        assert sorted(coarse.sizes()) == [6, 8]
        # Not part of the paper's Fig. 13 registry.
        assert "NESTED" not in DATASETS

    def test_validation(self):
        from repro.experiments.datasets import dataset_nested, nested_coarse_ground_truth

        with pytest.raises(ValueError):
            dataset_nested(alpha=1)
        with pytest.raises(ValueError):
            nested_coarse_ground_truth(dataset_gt(per_site=4))


class TestScaledBuilder:
    def test_full_scale_keeps_physical_capacities(self):
        builder = scaled_builder(32)
        assert builder.renater_capacity == pytest.approx(RENATER_CAPACITY)
        assert builder.bottleneck_capacity == pytest.approx(BORDEAUX_BOTTLENECK_CAPACITY)

    def test_reduced_scale_shrinks_shared_links_proportionally(self):
        builder = scaled_builder(8)
        assert builder.renater_capacity == pytest.approx(RENATER_CAPACITY / 4)
        assert builder.bottleneck_capacity == pytest.approx(
            BORDEAUX_BOTTLENECK_CAPACITY / 4
        )
        assert builder.node_capacity == scaled_builder(32).node_capacity

    def test_oversized_request_never_scales_up(self):
        builder = scaled_builder(64)
        assert builder.renater_capacity == pytest.approx(RENATER_CAPACITY)

    def test_invalid_per_site(self):
        with pytest.raises(ValueError):
            scaled_builder(0)
