"""Tests for the end-to-end tomography pipeline."""

import pytest

from repro.clustering.infomap import infomap
from repro.clustering.partition import Partition
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


def dumbbell_ground_truth(topology):
    left = {h for h in topology.host_names if h.startswith("left")}
    right = {h for h in topology.host_names if h.startswith("right")}
    return Partition([left, right])


class TestPipeline:
    def test_recovers_dumbbell_clusters(self, dumbbell_topology):
        pipeline = TomographyPipeline(
            dumbbell_topology,
            ground_truth=dumbbell_ground_truth(dumbbell_topology),
            config=default_swarm_config(300),
            seed=2,
        )
        result = pipeline.run(iterations=5)
        assert result.num_clusters == 2
        assert result.nmi == pytest.approx(1.0)
        assert result.classical_nmi == pytest.approx(1.0)
        assert result.modularity > 0.2
        assert len(result.nmi_per_iteration) == 5
        assert result.nmi_per_iteration[-1] == pytest.approx(1.0)
        assert result.measurement_time > 0

    def test_without_ground_truth_scores_are_none(self, dumbbell_topology):
        pipeline = TomographyPipeline(
            dumbbell_topology, config=default_swarm_config(200), seed=3
        )
        result = pipeline.run(iterations=2)
        assert result.nmi is None
        assert result.classical_nmi is None
        assert result.nmi_per_iteration == []
        assert result.num_clusters >= 1

    def test_ground_truth_must_cover_hosts(self, dumbbell_topology):
        incomplete = Partition([{"left-0", "left-1"}])
        with pytest.raises(ValueError):
            TomographyPipeline(
                dumbbell_topology,
                ground_truth=incomplete,
                config=default_swarm_config(100),
            )

    def test_ground_truth_may_cover_a_superset(self, dumbbell_topology):
        truth = dumbbell_ground_truth(dumbbell_topology)
        extended = Partition(list(truth.clusters) + [{"extra-node"}])
        pipeline = TomographyPipeline(
            dumbbell_topology,
            ground_truth=extended,
            config=default_swarm_config(150),
            seed=4,
        )
        result = pipeline.run(iterations=2, track_convergence=False)
        assert result.nmi is not None

    def test_host_subset(self, dumbbell_topology):
        hosts = ["left-0", "left-1", "right-0", "right-1"]
        pipeline = TomographyPipeline(
            dumbbell_topology,
            hosts=hosts,
            ground_truth=dumbbell_ground_truth(dumbbell_topology),
            config=default_swarm_config(150),
            seed=5,
        )
        result = pipeline.run(iterations=2, track_convergence=False)
        assert set(result.partition.nodes()) == set(hosts)

    def test_custom_clusterer_is_used(self, dumbbell_topology):
        pipeline = TomographyPipeline(
            dumbbell_topology,
            ground_truth=dumbbell_ground_truth(dumbbell_topology),
            config=default_swarm_config(300),
            seed=6,
            clusterer=lambda graph: infomap(graph),
        )
        result = pipeline.run(iterations=4, track_convergence=False)
        assert result.num_clusters >= 1
        assert result.nmi is not None

    def test_analyze_reuses_existing_record(self, dumbbell_topology):
        pipeline = TomographyPipeline(
            dumbbell_topology,
            ground_truth=dumbbell_ground_truth(dumbbell_topology),
            config=default_swarm_config(200),
            seed=7,
        )
        record = pipeline.campaign.run(3)
        result = pipeline.analyze(record, track_convergence=False)
        assert result.record is record
        assert result.metric.iterations == 3

    def test_evaluate_requires_ground_truth(self, dumbbell_topology):
        pipeline = TomographyPipeline(
            dumbbell_topology, config=default_swarm_config(100), seed=8
        )
        with pytest.raises(ValueError):
            pipeline.evaluate(Partition.whole(dumbbell_topology.host_names))

    def test_reproducibility(self, dumbbell_topology):
        def run_once():
            pipeline = TomographyPipeline(
                dumbbell_topology,
                ground_truth=dumbbell_ground_truth(dumbbell_topology),
                config=default_swarm_config(200),
                seed=11,
            )
            return pipeline.run(iterations=3, track_convergence=False)

        a, b = run_once(), run_once()
        assert a.partition == b.partition
        assert a.nmi == pytest.approx(b.nmi)
        assert a.modularity == pytest.approx(b.modularity)
