"""Batched lock-step engine vs the scalar oracle.

The contract of :class:`repro.bittorrent.batched.BatchedBroadcast` is that a
batched campaign is *indistinguishable* from running its lanes one at a
time: every lane's record (counts, times, control steps) must be bitwise the
scalar replay's, at any width, in both stepping modes, on either interest
maintenance path.  The suite cross-checks random scenarios at widths 1–8
against the scalar oracle, and guards the executor's fallback rule: any
workload or fault plan routes through the scalar path (``batch_width`` 1)
rather than silently diverging.
"""

import numpy as np
import pytest

import repro.bittorrent.batched as batched_module
import repro.bittorrent.swarm as swarm_module
from repro.bittorrent.batched import BatchedBroadcast
from repro.bittorrent.swarm import (
    STEPPING_MODES,
    BitTorrentBroadcast,
    SwarmConfig,
)
from repro.observability.metrics import METRICS
from repro.bittorrent.torrent import TorrentMeta
from repro.network.grid5000 import build_bordeaux_site, build_multi_site, default_cluster_of
from repro.scenarios.executors import BatchedExecutor
from repro.tomography.measurement import MeasurementCampaign


def make_config(num_fragments, stepping="event", **overrides):
    meta = TorrentMeta(
        name="batched-test", fragment_size=16384, num_fragments=num_fragments
    )
    return SwarmConfig(torrent=meta, stepping=stepping, **overrides)


def assert_result_identical(lane, scalar):
    """A batched lane must replay its scalar oracle bit for bit."""
    assert lane.root == scalar.root
    assert lane.duration == scalar.duration
    assert lane.distinct_edges == scalar.distinct_edges
    assert lane.control_steps == scalar.control_steps
    assert lane.stepping == scalar.stepping
    assert lane.fragments.labels == scalar.fragments.labels
    assert np.array_equal(lane.fragments.counts, scalar.fragments.counts)
    assert lane.completion_times == scalar.completion_times


def random_scenario(case):
    """Deterministic pseudo-random scenario for one property case."""
    rng = np.random.default_rng(20120 + case)
    if rng.integers(2):
        topology = build_bordeaux_site(3, 3, 2)
    else:
        topology = build_multi_site(
            {site: {default_cluster_of(site): 3} for site in ("bordeaux", "grenoble")}
        )
    num_fragments = int(rng.integers(30, 81))
    overrides = {}
    if rng.integers(2):
        overrides["rechoke_interval"] = 0.5
    seeds = rng.integers(0, 2**31, size=8).tolist()
    return topology, num_fragments, overrides, seeds


class TestLaneOracle:
    @pytest.mark.parametrize("stepping", STEPPING_MODES)
    @pytest.mark.parametrize("case,width", [(0, 1), (1, 2), (2, 5), (3, 8)])
    def test_every_lane_matches_its_scalar_replay(self, stepping, case, width):
        topology, num_fragments, overrides, seeds = random_scenario(case)
        config = make_config(num_fragments, stepping, **overrides)
        engine = BatchedBroadcast(topology, config)
        lanes = [
            (None, np.random.default_rng(seed)) for seed in seeds[:width]
        ]
        results = engine.run_many(lanes)
        assert [r.batch_width for r in results] == [width] * width
        scalar = BitTorrentBroadcast(topology, config)
        for seed, lane in zip(seeds, results):
            assert_result_identical(
                lane, scalar.run(rng=np.random.default_rng(seed))
            )

    def test_mixed_roots_stay_per_lane(self):
        topology = build_bordeaux_site(3, 3, 2)
        config = make_config(48)
        hosts = BitTorrentBroadcast(topology, config).hosts
        engine = BatchedBroadcast(topology, config)
        lanes = [
            (hosts[i % len(hosts)], np.random.default_rng(100 + i))
            for i in range(4)
        ]
        results = engine.run_many(lanes)
        scalar = BitTorrentBroadcast(topology, config)
        for i, lane in enumerate(results):
            assert lane.root == hosts[i % len(hosts)]
            assert_result_identical(
                lane,
                scalar.run(
                    root=hosts[i % len(hosts)], rng=np.random.default_rng(100 + i)
                ),
            )

    def test_incremental_interest_lanes_match_scalar(self, monkeypatch):
        """Above the matmul crossover, lanes use the per-lane incremental
        path and the driver never sees an interest request — still exact."""
        monkeypatch.setattr(swarm_module, "MATMUL_INTEREST_LIMIT", 0)
        monkeypatch.setattr(batched_module, "MATMUL_INTEREST_LIMIT", 0)
        topology = build_bordeaux_site(3, 3, 2)
        config = make_config(40)
        results = BatchedBroadcast(topology, config).run_many(
            [(None, np.random.default_rng(seed)) for seed in (7, 8, 9)]
        )
        scalar = BitTorrentBroadcast(topology, config)
        for seed, lane in zip((7, 8, 9), results):
            assert_result_identical(
                lane, scalar.run(rng=np.random.default_rng(seed))
            )

    def test_empty_lane_list(self):
        engine = BatchedBroadcast(build_bordeaux_site(3, 2, 1), make_config(30))
        assert engine.run_many([]) == []

    def test_metrics_record_width(self):
        engine = BatchedBroadcast(build_bordeaux_site(3, 2, 1), make_config(30))
        before = METRICS.snapshot()
        engine.run_many([(None, np.random.default_rng(s)) for s in (1, 2, 3)])
        delta = METRICS.snapshot().delta_since(before)
        assert delta.counter("batched.runs") == 1
        assert delta.counter("batched.lanes") == 3
        assert delta.counter("swarm.broadcasts") == 3


class TestBatchedExecutor:
    def test_chunking_defaults_to_one_batch(self):
        specs = [(("broadcast", i), None) for i in range(5)]
        assert BatchedExecutor().chunk_specs(specs) == [tuple(specs)]

    def test_max_width_splits_contiguously(self):
        specs = [(("broadcast", i), None) for i in range(5)]
        chunks = BatchedExecutor(max_width=2).chunk_specs(specs)
        assert [len(c) for c in chunks] == [2, 2, 1]
        assert [s for chunk in chunks for s in chunk] == specs

    def test_invalid_max_width(self):
        with pytest.raises(ValueError):
            BatchedExecutor(max_width=0)

    def test_campaign_records_batch_width(self, two_site_topology, tiny_swarm_config):
        record = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42,
            executor=BatchedExecutor(),
        ).run(4)
        assert [r.batch_width for r in record.results] == [4] * 4

    def test_workload_plan_falls_back_to_scalar(
        self, two_site_topology, tiny_swarm_config
    ):
        """A non-empty workload plan cannot hold lock-step: the executor
        must run the scalar oracle (batch_width 1), not silently diverge."""
        serial = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42, workload="churn"
        ).run(3)
        batched = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42, workload="churn",
            executor=BatchedExecutor(),
        ).run(3)
        assert [r.batch_width for r in batched.results] == [1, 1, 1]
        for lane, scalar in zip(batched.results, serial.results):
            assert_result_identical(lane, scalar)
        assert batched.workload_stats == serial.workload_stats
        assert any(
            row["kind"] == "churn"
            for iteration in batched.workload_stats
            for row in iteration
        )

    def test_fault_plan_falls_back_to_scalar(
        self, two_site_topology, tiny_swarm_config
    ):
        serial = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42,
            workload="rival", faults="chaos",
        ).run(3)
        batched = MeasurementCampaign(
            two_site_topology, tiny_swarm_config, seed=42,
            workload="rival", faults="chaos",
            executor=BatchedExecutor(),
        ).run(3)
        assert [r.batch_width for r in batched.results] == [1, 1, 1]
        for lane, scalar in zip(batched.results, serial.results):
            assert_result_identical(lane, scalar)
        assert batched.workload_stats == serial.workload_stats
