"""Shared fixtures for the test suite.

Fixtures keep simulated configurations deliberately small (a handful of hosts,
a few hundred fragments) so that the whole suite runs in well under a minute;
the benchmark harness exercises the larger, paper-scale settings.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bittorrent.swarm import SwarmConfig
from repro.graph.wgraph import WeightedGraph
from repro.network.grid5000 import Grid5000Builder, build_multi_site, default_cluster_of
from repro.network.routing import RoutingTable
from repro.network.topology import GBPS, MBPS, Host, Switch, Topology
from repro.tomography.pipeline import default_swarm_config


# --------------------------------------------------------------------- #
# topologies
# --------------------------------------------------------------------- #
@pytest.fixture
def dumbbell_topology() -> Topology:
    """Two 3-host clusters joined by a narrow inter-switch link.

    The canonical bottleneck scenario: intra-cluster links are 10× faster
    than the shared inter-cluster link.
    """
    topo = Topology(name="dumbbell")
    topo.add_switch(Switch(name="sw-left", site="left"))
    topo.add_switch(Switch(name="sw-right", site="right"))
    for side, switch in (("left", "sw-left"), ("right", "sw-right")):
        for i in range(3):
            host = topo.add_host(Host(name=f"{side}-{i}", site=side, cluster=side))
            topo.add_link(host.name, switch, capacity=100 * MBPS, latency=5e-5)
    topo.add_link("sw-left", "sw-right", capacity=10 * MBPS, latency=1e-4,
                  name="bottleneck")
    return topo


@pytest.fixture
def line_topology() -> Topology:
    """Three hosts in a row through two switches (multi-hop routing checks)."""
    topo = Topology(name="line")
    topo.add_switch(Switch(name="s1"))
    topo.add_switch(Switch(name="s2"))
    for name in ("a", "b", "c"):
        topo.add_host(Host(name=name, site="line", cluster="line"))
    topo.add_link("a", "s1", capacity=50 * MBPS)
    topo.add_link("b", "s1", capacity=50 * MBPS)
    topo.add_link("s1", "s2", capacity=25 * MBPS, name="trunk")
    topo.add_link("c", "s2", capacity=50 * MBPS)
    return topo


@pytest.fixture
def bordeaux_small() -> Topology:
    """A small Bordeaux-like site: 4 Bordeplage + 3 Bordereau + 1 Borderline."""
    builder = Grid5000Builder()
    return builder.build_single_site(
        "bordeaux", {"bordeplage": 4, "bordereau": 3, "borderline": 1}
    )


@pytest.fixture
def two_site_topology() -> Topology:
    """4 Grenoble + 4 Toulouse hosts over the Renater-like backbone."""
    return build_multi_site(
        {
            "grenoble": {default_cluster_of("grenoble"): 4},
            "toulouse": {default_cluster_of("toulouse"): 4},
        }
    )


@pytest.fixture
def routing(dumbbell_topology) -> RoutingTable:
    return RoutingTable(dumbbell_topology)


# --------------------------------------------------------------------- #
# swarm configurations
# --------------------------------------------------------------------- #
@pytest.fixture
def tiny_swarm_config() -> SwarmConfig:
    """A very small torrent for fast unit tests of the swarm."""
    return default_swarm_config(120)


@pytest.fixture
def small_swarm_config() -> SwarmConfig:
    return default_swarm_config(300)


# --------------------------------------------------------------------- #
# graphs
# --------------------------------------------------------------------- #
@pytest.fixture
def two_community_graph() -> WeightedGraph:
    """Two dense 4-node cliques joined by one weak edge."""
    graph = WeightedGraph()
    left = [f"l{i}" for i in range(4)]
    right = [f"r{i}" for i in range(4)]
    for group in (left, right):
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                graph.add_edge(group[i], group[j], 10.0)
    graph.add_edge("l0", "r0", 1.0)
    return graph


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
