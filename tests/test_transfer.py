"""Unit tests for the point-to-point transfer facade."""

import pytest

from repro.network.routing import RoutingTable
from repro.network.topology import MBPS
from repro.network.transfer import PointToPointNetwork


class TestPointToPointNetwork:
    def test_measure_pair_reports_isolated_bandwidth(self, dumbbell_topology):
        net = PointToPointNetwork(dumbbell_topology)
        result = net.measure_pair("left-0", "left-1", 10e6)
        assert result.bandwidth == pytest.approx(100 * MBPS, rel=1e-6)
        assert result.duration == pytest.approx(10e6 / (100 * MBPS), rel=1e-6)

    def test_concurrent_pairs_expose_shared_bottleneck(self, dumbbell_topology):
        net = PointToPointNetwork(dumbbell_topology)
        results = net.measure_pairs_concurrently(
            [("left-0", "right-0"), ("left-1", "right-1")], 5e6
        )
        for result in results.values():
            assert result.bandwidth == pytest.approx(5 * MBPS, rel=1e-6)

    def test_disjoint_pairs_do_not_interfere(self, dumbbell_topology):
        net = PointToPointNetwork(dumbbell_topology)
        results = net.measure_pairs_concurrently(
            [("left-0", "left-1"), ("right-0", "right-1")], 5e6
        )
        for result in results.values():
            assert result.bandwidth == pytest.approx(100 * MBPS, rel=1e-6)

    def test_busy_time_accumulates_makespan(self, dumbbell_topology):
        net = PointToPointNetwork(dumbbell_topology)
        net.measure_pair("left-0", "left-1", 10e6)
        first = net.total_busy_time
        net.measure_pair("left-0", "right-0", 10e6)
        assert net.total_busy_time > first
        assert net.measurements_run == 2
        assert net.total_bytes == pytest.approx(20e6)

    def test_empty_request_list(self, dumbbell_topology):
        net = PointToPointNetwork(dumbbell_topology)
        assert net.run_concurrent([]) == []
        assert net.measurements_run == 0

    def test_results_preserve_request_order(self, dumbbell_topology):
        net = PointToPointNetwork(dumbbell_topology)
        results = net.run_concurrent(
            [("left-0", "left-1", 1e6), ("right-0", "right-1", 2e6)]
        )
        assert (results[0].src, results[0].dst) == ("left-0", "left-1")
        assert (results[1].src, results[1].dst) == ("right-0", "right-1")
        assert results[1].size == pytest.approx(2e6)

    def test_isolated_bandwidth_uses_route_bottleneck(self, dumbbell_topology):
        routing = RoutingTable(dumbbell_topology)
        net = PointToPointNetwork(dumbbell_topology, routing)
        assert net.isolated_bandwidth("left-0", "right-0") == pytest.approx(10 * MBPS)
        assert net.isolated_bandwidth("left-0", "left-1") == pytest.approx(100 * MBPS)
