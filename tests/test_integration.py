"""Integration and cross-module property tests.

These tests exercise chains of modules together (measurement → metric →
clustering → evaluation → application) and check conservation laws that must
hold regardless of protocol randomness.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.applications.collectives import cluster_aware_broadcast, flat_broadcast
from repro.bittorrent.swarm import BitTorrentBroadcast
from repro.clustering.louvain import louvain
from repro.clustering.modularity import modularity
from repro.clustering.nmi import overlapping_nmi
from repro.experiments.datasets import (
    dataset_gt,
    dataset_nested,
    nested_coarse_ground_truth,
)
from repro.network.grid5000 import build_flat_site
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.metric import aggregate_mean, metric_graph
from repro.tomography.pipeline import TomographyPipeline, default_swarm_config


class TestFragmentConservation:
    """Invariants linking the swarm, the counters and the metric."""

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_every_host_receives_exactly_the_file(self, seed):
        topology = build_flat_site("lyon", 6)
        config = default_swarm_config(80)
        broadcast = BitTorrentBroadcast(topology, config)
        result = broadcast.run(rng=np.random.default_rng(seed))
        for host in topology.host_names:
            received = sum(result.fragments.received_by(host).values())
            expected = 0 if host == result.root else config.torrent.num_fragments
            assert received == pytest.approx(expected)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_metric_total_matches_fragment_total(self, seed):
        topology = build_flat_site("lyon", 5)
        config = default_swarm_config(60)
        broadcast = BitTorrentBroadcast(topology, config)
        result = broadcast.run(rng=np.random.default_rng(seed))
        metric = aggregate_mean([result.fragments])
        # Summing w(e) over all edges counts every received fragment once.
        assert metric.total_weight() == pytest.approx(result.fragments.total_fragments())


class TestEndToEnd:
    def test_two_site_pipeline_recovers_sites_and_speeds_up_broadcast(self):
        ds = dataset_gt(per_site=6)
        pipeline = TomographyPipeline(
            ds.topology,
            hosts=ds.hosts,
            ground_truth=ds.ground_truth,
            config=default_swarm_config(400),
            seed=3,
        )
        result = pipeline.run(iterations=5, track_convergence=False)
        assert result.num_clusters == 2
        assert result.nmi == pytest.approx(1.0)

        # The recovered clusters are immediately useful for scheduling.
        flat = flat_broadcast(ds.topology, ds.hosts, ds.hosts[0], 30e6)
        aware = cluster_aware_broadcast(
            ds.topology, ds.hosts, ds.hosts[0], 30e6, result.partition
        )
        assert aware.completion_time < flat.completion_time

    def test_nested_dataset_exhibits_the_bt_failure_mode(self):
        ds = dataset_nested(alpha=4, beta=4, gamma=8)
        campaign = MeasurementCampaign(
            ds.topology,
            default_swarm_config(400),
            hosts=ds.hosts,
            seed=5,
            rotate_root=True,
        )
        record = campaign.run(6)
        graph = metric_graph(record.aggregate())
        single = louvain(graph).partition
        coarse = nested_coarse_ground_truth(ds)
        # The coarse split is found; the fine three-way truth cannot be.
        assert overlapping_nmi(single, coarse) >= 0.9
        assert overlapping_nmi(single, ds.ground_truth) < 1.0

    def test_modularity_of_recovered_partition_is_positive(self):
        ds = dataset_gt(per_site=5)
        pipeline = TomographyPipeline(
            ds.topology,
            hosts=ds.hosts,
            config=default_swarm_config(300),
            seed=9,
        )
        result = pipeline.run(iterations=4, track_convergence=False)
        assert result.modularity == pytest.approx(
            modularity(result.graph, result.partition), abs=1e-9
        )
        assert result.modularity > 0

    def test_more_iterations_never_lose_hosts_or_edges(self):
        ds = dataset_gt(per_site=4)
        campaign = MeasurementCampaign(
            ds.topology, default_swarm_config(200), hosts=ds.hosts, seed=11
        )
        record = campaign.run(5)
        edge_counts = [m.nonzero_edge_count() for m in record.cumulative_aggregates()]
        # Aggregating more iterations can only add observed edges.
        assert edge_counts == sorted(edge_counts)
        assert all(m.labels == tuple(ds.hosts) for m in record.cumulative_aggregates())
