"""Tests for the classical saturation-tomography baselines."""

import pytest

from repro.clustering.partition import Partition
from repro.tomography.baselines import (
    PairwiseSaturationTomography,
    TripletSaturationTomography,
)


class TestPairwiseBaseline:
    def test_probe_count_is_quadratic(self, dumbbell_topology):
        baseline = PairwiseSaturationTomography(dumbbell_topology, probe_size=1e6)
        result = baseline.run()
        n = len(dumbbell_topology.host_names)
        assert result.probes == n * (n - 1) // 2
        assert baseline.estimated_probe_count(20) == 190

    def test_measurement_time_is_positive_and_grows_with_probe_size(self, dumbbell_topology):
        small = PairwiseSaturationTomography(dumbbell_topology, probe_size=1e6).run()
        large = PairwiseSaturationTomography(dumbbell_topology, probe_size=4e6).run()
        assert small.measurement_time > 0
        assert large.measurement_time > small.measurement_time

    def test_bandwidth_graph_covers_all_pairs(self, dumbbell_topology):
        result = PairwiseSaturationTomography(dumbbell_topology, probe_size=1e6).run()
        n = len(dumbbell_topology.host_names)
        assert result.bandwidth_graph.number_of_edges() == n * (n - 1) // 2

    def test_under_load_measurement_separates_dumbbell(self, dumbbell_topology):
        baseline = PairwiseSaturationTomography(
            dumbbell_topology, probe_size=2e6, concurrent_load=2, seed=3
        )
        result = baseline.run()
        truth = Partition(
            [
                {h for h in dumbbell_topology.host_names if h.startswith("left")},
                {h for h in dumbbell_topology.host_names if h.startswith("right")},
            ]
        )
        # Under-load probing should place the two halves in different clusters.
        assert result.partition.num_clusters >= 2
        left = [h for h in dumbbell_topology.host_names if h.startswith("left")]
        assert result.partition.same_cluster(left[0], left[1])

    def test_invalid_parameters(self, dumbbell_topology):
        with pytest.raises(ValueError):
            PairwiseSaturationTomography(dumbbell_topology, probe_size=0.0)
        with pytest.raises(ValueError):
            PairwiseSaturationTomography(dumbbell_topology, concurrent_load=-1)
        with pytest.raises(ValueError):
            PairwiseSaturationTomography(
                dumbbell_topology, hosts=[dumbbell_topology.host_names[0]]
            )


class TestTripletBaseline:
    def test_probe_count_is_cubic(self, dumbbell_topology):
        hosts = dumbbell_topology.host_names[:4]
        baseline = TripletSaturationTomography(dumbbell_topology, hosts=hosts, probe_size=1e6)
        result = baseline.run()
        assert result.probes == 2 * 4  # 2 probes per C(4,3)=4 triplets
        assert baseline.estimated_probe_count(10) == 2 * 120

    def test_max_triplets_cap(self, dumbbell_topology):
        baseline = TripletSaturationTomography(
            dumbbell_topology, probe_size=1e6, max_triplets=3
        )
        result = baseline.run()
        assert result.probes == 6

    def test_detects_interference_on_shared_bottleneck(self, dumbbell_topology):
        # Use hosts whose a->b and a->c connections share the bottleneck link.
        hosts = ["left-0", "right-0", "right-1"]
        baseline = TripletSaturationTomography(
            dumbbell_topology, hosts=hosts, probe_size=2e6
        )
        result = baseline.run()
        assert result.interference, "shared bottleneck should be detected"

    def test_no_interference_inside_a_cluster(self, dumbbell_topology):
        hosts = ["left-0", "left-1", "left-2"]
        baseline = TripletSaturationTomography(
            dumbbell_topology, hosts=hosts, probe_size=2e6
        )
        result = baseline.run()
        # Intra-cluster transfers only share the (never saturated) switch, but
        # flows from the same source do share that source's access link, so
        # interference within the triplet is expected; the important part is
        # that the under-load bandwidths stay symmetric and the clustering does
        # not split the clique apart.
        assert result.partition.num_clusters == 1

    def test_measurement_time_exceeds_pairwise_for_same_hosts(self, dumbbell_topology):
        hosts = dumbbell_topology.host_names[:5]
        pairwise = PairwiseSaturationTomography(
            dumbbell_topology, hosts=hosts, probe_size=1e6
        ).run()
        triplet = TripletSaturationTomography(
            dumbbell_topology, hosts=hosts, probe_size=1e6
        ).run()
        assert triplet.measurement_time > pairwise.measurement_time
        assert triplet.probes > pairwise.probes

    def test_invalid_threshold(self, dumbbell_topology):
        with pytest.raises(ValueError):
            TripletSaturationTomography(dumbbell_topology, interference_threshold=0.0)
        with pytest.raises(ValueError):
            TripletSaturationTomography(dumbbell_topology, interference_threshold=1.5)
