"""Unit and property tests for the weighted graph type."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.graph.wgraph import WeightedGraph


class TestConstruction:
    def test_from_edges_accumulates_duplicates(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0), ("a", "b", 2.5)])
        assert graph.edge_weight("a", "b") == pytest.approx(3.5)

    def test_from_edges_with_isolated_nodes(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0)], nodes=["a", "b", "c"])
        assert "c" in graph
        assert graph.number_of_edges() == 1

    def test_from_weight_matrix_roundtrip(self):
        matrix = np.array([[0.0, 2.0, 0.0], [2.0, 0.0, 1.0], [0.0, 1.0, 0.0]])
        graph = WeightedGraph.from_weight_matrix(matrix, labels=["x", "y", "z"])
        back, labels = graph.to_weight_matrix(order=["x", "y", "z"])
        assert np.allclose(back, matrix)
        assert labels == ["x", "y", "z"]

    def test_from_weight_matrix_rejects_asymmetric(self):
        with pytest.raises(ValueError):
            WeightedGraph.from_weight_matrix(np.array([[0.0, 1.0], [2.0, 0.0]]))

    def test_from_weight_matrix_rejects_non_square(self):
        with pytest.raises(ValueError):
            WeightedGraph.from_weight_matrix(np.zeros((2, 3)))

    def test_negative_weight_rejected(self):
        graph = WeightedGraph()
        with pytest.raises(ValueError):
            graph.add_edge("a", "b", -1.0)

    def test_copy_is_independent(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0)])
        clone = graph.copy()
        clone.add_edge("a", "b", 5.0)
        assert graph.edge_weight("a", "b") == pytest.approx(1.0)


class TestQueries:
    def test_degree_weight_counts_self_loops_twice(self):
        graph = WeightedGraph()
        graph.add_edge("a", "a", 2.0)
        graph.add_edge("a", "b", 3.0)
        assert graph.degree_weight("a") == pytest.approx(2 * 2.0 + 3.0)
        assert graph.degree_weight("b") == pytest.approx(3.0)

    def test_total_weight_counts_each_edge_once(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0), ("b", "c", 2.0)])
        assert graph.total_weight() == pytest.approx(3.0)

    def test_edges_yield_each_pair_once(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0), ("b", "c", 2.0), ("a", "c", 4.0)])
        edges = list(graph.edges())
        assert len(edges) == 3

    def test_neighbors_returns_copy(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0)])
        nbrs = graph.neighbors("a")
        nbrs["b"] = 100.0
        assert graph.edge_weight("a", "b") == pytest.approx(1.0)

    def test_missing_node_raises(self):
        graph = WeightedGraph()
        with pytest.raises(KeyError):
            graph.neighbors("ghost")
        with pytest.raises(KeyError):
            graph.degree_weight("ghost")

    def test_remove_edge(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0)])
        graph.remove_edge("a", "b")
        assert not graph.has_edge("a", "b")
        with pytest.raises(KeyError):
            graph.remove_edge("a", "b")

    def test_subgraph_keeps_internal_edges_only(self):
        graph = WeightedGraph.from_edges(
            [("a", "b", 1.0), ("b", "c", 2.0), ("c", "d", 3.0)]
        )
        sub = graph.subgraph(["a", "b", "c"])
        assert sub.has_edge("a", "b")
        assert sub.has_edge("b", "c")
        assert "d" not in sub

    def test_subgraph_unknown_node_raises(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0)])
        with pytest.raises(KeyError):
            graph.subgraph(["a", "zzz"])

    def test_connected_components(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0), ("c", "d", 1.0)])
        graph.add_node("e")
        components = sorted(sorted(c) for c in graph.connected_components())
        assert components == [["a", "b"], ["c", "d"], ["e"]]

    def test_top_weight_fraction(self):
        graph = WeightedGraph.from_edges(
            [("a", "b", 10.0), ("b", "c", 5.0), ("c", "d", 1.0), ("d", "a", 0.5)]
        )
        top = graph.top_weight_fraction(0.5)
        assert top.number_of_edges() == 2
        assert top.has_edge("a", "b")
        assert top.has_edge("b", "c")
        assert set(top.nodes()) == set(graph.nodes())

    def test_top_weight_fraction_invalid(self):
        graph = WeightedGraph.from_edges([("a", "b", 1.0)])
        with pytest.raises(ValueError):
            graph.top_weight_fraction(0.0)

    def test_to_networkx(self):
        graph = WeightedGraph.from_edges([("a", "b", 2.0)])
        nx_graph = graph.to_networkx()
        assert nx_graph["a"]["b"]["weight"] == pytest.approx(2.0)


# --------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------- #
edge_lists = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=0, max_value=8),
        st.floats(min_value=0.01, max_value=100.0, allow_nan=False),
    ),
    min_size=1,
    max_size=30,
)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_total_weight_equals_half_sum_of_degrees(edges):
    graph = WeightedGraph.from_edges(edges)
    degree_sum = sum(graph.degree_weight(node) for node in graph.nodes())
    assert degree_sum == pytest.approx(2.0 * graph.total_weight(), rel=1e-9)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_matrix_roundtrip_preserves_weights(edges):
    graph = WeightedGraph.from_edges((u, v, w) for u, v, w in edges if u != v)
    if graph.number_of_edges() == 0:
        return
    matrix, labels = graph.to_weight_matrix()
    rebuilt = WeightedGraph.from_weight_matrix(matrix, labels=labels)
    for u, v, w in graph.edges():
        assert rebuilt.edge_weight(u, v) == pytest.approx(w, rel=1e-9)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_subgraph_total_weight_never_exceeds_parent(edges):
    graph = WeightedGraph.from_edges(edges)
    nodes = graph.nodes()[: max(1, len(graph) // 2)]
    sub = graph.subgraph(nodes)
    assert sub.total_weight() <= graph.total_weight() + 1e-9
