"""Tests for the per-figure experiment runners (small-scale sanity runs)."""

import pytest

from repro.experiments.datasets import dataset_gt
from repro.experiments.runners import (
    run_baseline_cost,
    run_broadcast_efficiency,
    run_dataset_clustering,
    run_fig4,
    run_fig5,
    run_fig13,
    run_netpipe_reference,
)


class TestDatasetClusteringRunner:
    def test_gt_dataset_summary_fields(self):
        summary = run_dataset_clustering(
            dataset_gt(per_site=6), iterations=4, num_fragments=300, seed=2
        )
        assert summary["dataset"] == "G-T"
        assert summary["hosts"] == 12
        assert summary["found_clusters"] == summary["expected_clusters"] == 2
        assert summary["measured_nmi"] == pytest.approx(1.0)
        assert summary["measurement_time_s"] > 0


class TestFig4Runner:
    def test_local_traffic_dominates_remote(self):
        outcome = run_fig4(
            bordeplage=6, bordereau=4, borderline=2, iterations=6, num_fragments=300, seed=2
        )
        assert outcome["local_total"] > 0
        assert outcome["remote_total"] > 0
        # The paper's headline observation: local-cluster peers receive several
        # times more fragments per peer than peers across the bottleneck.
        assert outcome["local_mean"] > 1.5 * outcome["remote_mean"]
        assert outcome["focus_host"].startswith("bordeaux.bordeplage")
        # Edge dictionaries partition the other hosts.
        assert len(outcome["local_edges"]) + len(outcome["remote_edges"]) == 11


class TestFig5Runner:
    def test_single_edge_variance_is_high(self):
        outcome = run_fig5(cluster_nodes=10, iterations=12, num_fragments=200, seed=3)
        assert len(outcome["history"]) == 12
        # High coefficient of variation (vs. near-zero for NetPIPE).
        assert outcome["coefficient_of_variation"] > 0.5
        assert outcome["zero_runs"] >= 0
        assert outcome["nonzero_max"] > outcome["nonzero_min"]


class TestFig13Runner:
    def test_curves_produced_for_requested_datasets(self):
        studies = run_fig13(
            datasets=["G-T"], per_site=6, iterations=5, num_fragments=300, seed=4
        )
        assert set(studies) == {"G-T"}
        study = studies["G-T"]
        assert study.iterations == 5
        assert study.final_nmi == pytest.approx(1.0)
        assert study.iterations_to_reach(0.99) <= 5


class TestEfficiencyRunners:
    def test_broadcast_efficiency_shapes(self):
        outcome = run_broadcast_efficiency(
            node_counts=(4, 8), num_fragments=200, sites=("grenoble", "toulouse")
        )
        assert len(outcome["durations_by_nodes"]) == 2
        # Roughly constant in node count (well below linear growth).
        assert outcome["node_scaling_ratio"] < 1.8
        # Roughly linear in the file size (doubling fragments ~doubles time).
        assert outcome["size_scaling_ratio"] > 1.5

    def test_baseline_cost_grows_faster_than_bittorrent(self):
        outcome = run_baseline_cost(
            node_counts=(4, 8), probe_size=4e6, num_fragments=150, bt_iterations=2
        )
        rows = outcome["rows"]
        assert len(rows) == 2
        small, large = rows
        bt_growth = large["bittorrent_time_s"] / small["bittorrent_time_s"]
        pairwise_growth = large["pairwise_time_s"] / small["pairwise_time_s"]
        triplet_growth = large["triplet_time_s"] / small["triplet_time_s"]
        assert pairwise_growth > bt_growth
        assert triplet_growth > pairwise_growth
        assert large["triplet_probes"] > large["pairwise_probes"]

    def test_netpipe_reference_numbers(self):
        outcome = run_netpipe_reference(repeats=3)
        assert outcome["intra_cluster_mbps"] == pytest.approx(890.0, rel=0.05)
        assert outcome["inter_site_mbps"] < outcome["intra_cluster_mbps"]
        assert outcome["intra_cluster_std"] == pytest.approx(0.0, abs=1e-6)
