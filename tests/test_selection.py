"""Unit tests for rarest-first piece selection."""

import numpy as np
import pytest

from repro.bittorrent.peer import PeerState
from repro.bittorrent.selection import PieceSelector


def make_peer(name, fragments=8):
    return PeerState(name=name, index=0, num_fragments=fragments)


class TestPieceSelector:
    def test_register_bitfield_updates_availability(self):
        selector = PieceSelector(4)
        seed_have = np.ones(4, dtype=bool)
        selector.register_bitfield(seed_have)
        assert selector.availability.tolist() == [1, 1, 1, 1]

    def test_register_wrong_shape_rejected(self):
        selector = PieceSelector(4)
        with pytest.raises(ValueError):
            selector.register_bitfield(np.ones(5, dtype=bool))

    def test_record_receipt_bounds(self):
        selector = PieceSelector(4)
        selector.record_receipt(2)
        assert selector.availability[2] == 1
        with pytest.raises(IndexError):
            selector.record_receipt(4)

    def test_select_returns_none_when_nothing_useful(self, rng):
        selector = PieceSelector(8)
        downloader = make_peer("d")
        uploader = make_peer("u")
        assert selector.select(downloader, uploader, rng) is None

    def test_select_only_offers_fragments_uploader_has(self, rng):
        selector = PieceSelector(8)
        downloader = make_peer("d")
        uploader = make_peer("u")
        uploader.receive_fragment(3)
        for _ in range(20):
            choice = selector.select(downloader, uploader, rng)
            assert choice == 3

    def test_random_first_phase_uses_any_candidate(self, rng):
        selector = PieceSelector(8, random_first_threshold=4)
        downloader = make_peer("d")
        uploader = make_peer("u")
        uploader.make_seed()
        choices = {selector.select(downloader, uploader, rng) for _ in range(50)}
        assert len(choices) > 1  # random-first really is random

    def test_rarest_first_prefers_least_available(self, rng):
        selector = PieceSelector(6, random_first_threshold=0)
        downloader = make_peer("d", 6)
        uploader = make_peer("u", 6)
        uploader.make_seed()
        # Make fragments 0..4 common, fragment 5 rare.
        for fragment in range(5):
            selector.availability[fragment] = 10
        selector.availability[5] = 1
        choice = selector.select(downloader, uploader, rng)
        assert choice == 5

    def test_rarest_first_breaks_ties_randomly(self, rng):
        selector = PieceSelector(6, random_first_threshold=0)
        downloader = make_peer("d", 6)
        uploader = make_peer("u", 6)
        uploader.make_seed()
        selector.availability[:] = 3
        choices = {selector.select(downloader, uploader, rng) for _ in range(60)}
        assert len(choices) > 1

    def test_already_held_fragments_never_selected(self, rng):
        selector = PieceSelector(6, random_first_threshold=0)
        downloader = make_peer("d", 6)
        uploader = make_peer("u", 6)
        uploader.make_seed()
        for fragment in (0, 1, 2, 3):
            downloader.receive_fragment(fragment)
        for _ in range(20):
            assert selector.select(downloader, uploader, rng) in (4, 5)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            PieceSelector(0)
