"""The multi-tenant workload subsystem: engine, actors, spec, campaigns.

The two load-bearing properties:

* **degenerate exactness** — a workload holding only the measured broadcast
  replays the standalone ``BitTorrentBroadcast.run`` loop bit for bit
  (fragment matrix, durations, completion times, control steps);
* **stepping equivalence under interference** — with cross traffic, rival
  broadcasts, churn and capacity drift sharing the clock, the event-stepped
  loop still replays the fixed-dt oracle exactly (the engine's interference
  wakeups cut jumps short whenever the piecewise-constant-rate assumption
  behind a jump breaks).
"""

import hashlib

import numpy as np
import pytest

from repro.bittorrent.swarm import BitTorrentBroadcast, SwarmConfig
from repro.bittorrent.torrent import TorrentMeta
from repro.network.grid5000 import (
    build_bordeaux_site,
    build_multi_site,
    default_cluster_of,
)
from repro.tomography.measurement import MeasurementCampaign
from repro.workloads import (
    NONE,
    WORKLOAD_PRESETS,
    ActorSpec,
    BroadcastActor,
    BulkTransferActor,
    CapacityDriftActor,
    PoissonTrafficActor,
    WorkloadEngine,
    WorkloadSpec,
    actor,
    capacity_drift_workload,
    churn_workload,
    cross_traffic_workload,
    mixed_workload,
    rival_broadcast_workload,
    run_workload_iteration,
    workload_from_name,
)


def fingerprint(result):
    counts = result.fragments.counts.astype(np.int64)
    digest = hashlib.sha256()
    digest.update(("|".join(result.fragments.labels)).encode())
    digest.update(counts.tobytes())
    return digest.hexdigest()


@pytest.fixture(scope="module")
def two_site_topology():
    return build_multi_site(
        {site: {default_cluster_of(site): 4} for site in ("bordeaux", "grenoble")}
    )


@pytest.fixture(scope="module")
def bordeaux_topology():
    return build_bordeaux_site(bordeplage=4, bordereau=3, borderline=2)


def config_for(num_fragments, stepping="event", **kwargs):
    meta = TorrentMeta(name="wl", fragment_size=16384, num_fragments=num_fragments)
    return SwarmConfig(torrent=meta, stepping=stepping, **kwargs)


# ---------------------------------------------------------------------- #
# degenerate one-actor exactness
# ---------------------------------------------------------------------- #
class TestOneActorEquivalence:
    @pytest.mark.parametrize("stepping", ["fixed", "event"])
    def test_single_actor_matches_standalone_run(self, two_site_topology, stepping):
        config = config_for(80, stepping=stepping)
        reference = BitTorrentBroadcast(two_site_topology, config).run(
            rng=np.random.default_rng(73)
        )
        engine = WorkloadEngine(two_site_topology)
        primary = engine.add(
            BroadcastActor("primary", config, rng=np.random.default_rng(73))
        )
        engine.run()
        result = primary.result
        assert fingerprint(result) == fingerprint(reference)
        assert result.duration == reference.duration
        assert result.completion_times == reference.completion_times
        assert result.control_steps == reference.control_steps

    def test_empty_workload_campaign_equals_classic_campaign(self, two_site_topology):
        config = config_for(60)
        classic = MeasurementCampaign(two_site_topology, config, seed=11).run(3)
        # The empty spec routes through the classic path...
        via_none = MeasurementCampaign(
            two_site_topology, config, seed=11, workload=NONE
        ).run(3)
        # ...and a one-actor engine run reproduces it measurement for
        # measurement (same (seed, "broadcast", i) stream derivation).
        engine_record = [
            run_workload_iteration(
                two_site_topology, config, None, None, 11, i, NONE
            )[0]
            for i in range(3)
        ]
        for a, b, c in zip(classic.results, via_none.results, engine_record):
            assert fingerprint(a) == fingerprint(b) == fingerprint(c)
            assert a.duration == b.duration == c.duration


# ---------------------------------------------------------------------- #
# stepping equivalence under interference
# ---------------------------------------------------------------------- #
WORKLOAD_FAMILIES = {
    "rival": rival_broadcast_workload(rivals=1, stagger=0.3),
    "cross": cross_traffic_workload(intensity=1.0, sources=2, bulk=True),
    "churn": churn_workload(churn_rate=2.0),
    "drift": capacity_drift_workload(interval_frac=0.1, floor=0.5),
    "mixed": mixed_workload(intensity=0.5),
}


@pytest.mark.parametrize("family", sorted(WORKLOAD_FAMILIES))
def test_fixed_and_event_stepping_agree_under_interference(
    bordeaux_topology, family
):
    """Interference must not fork the two stepping policies: byte state is
    anchored and jumps are cut short at every foreign transition, so the
    event mode replays the fixed oracle even in a changing network."""
    workload = WORKLOAD_FAMILIES[family]
    outcomes = {}
    for stepping in ("fixed", "event"):
        config = config_for(
            600, stepping=stepping, rechoke_interval=0.3, optimistic_every=2
        )
        result, stats = run_workload_iteration(
            bordeaux_topology, config, None, None, 99, 0, workload
        )
        outcomes[stepping] = (
            fingerprint(result),
            result.duration,
            result.completion_times,
        )
    assert outcomes["fixed"] == outcomes["event"]


def test_event_mode_jumps_despite_interference(bordeaux_topology):
    """The event mode still skips inert control points in a busy network."""
    results = {}
    for stepping in ("fixed", "event"):
        config = config_for(600, stepping=stepping, control_dt=2e-5)
        result, _ = run_workload_iteration(
            bordeaux_topology, config, None, None, 7, 0,
            cross_traffic_workload(intensity=0.5, sources=1),
        )
        results[stepping] = result
    assert fingerprint(results["fixed"]) == fingerprint(results["event"])
    assert results["event"].control_steps < results["fixed"].control_steps


# ---------------------------------------------------------------------- #
# individual actors
# ---------------------------------------------------------------------- #
class TestActors:
    def test_churn_departures_and_rejoins_recorded(self, bordeaux_topology):
        config = config_for(600, rechoke_interval=0.3)
        result, stats = run_workload_iteration(
            bordeaux_topology, config, None, None, 42, 0, churn_workload(4.0)
        )
        churn_stats = next(s for s in stats if s["kind"] == "churn")
        primary_stats = next(s for s in stats if s["actor"] == "primary")
        assert churn_stats["leaves"] > 0
        assert primary_stats["churn_events"] > 0
        assert primary_stats["finished"]
        # Every present peer still downloads the whole file.
        assert result.fragments.total_fragments() > 0

    def test_poisson_traffic_injects_flows(self, two_site_topology):
        engine = WorkloadEngine(two_site_topology)
        engine.add(
            PoissonTrafficActor(
                "bg",
                np.random.default_rng(3),
                offered_load=50e6,
                mean_size=5e6,
            )
        )
        engine.run(until=10.0)
        stats = engine.stats()[0]
        assert stats["flows_started"] > 10
        assert stats["bytes_delivered"] > 0
        assert engine.now == pytest.approx(10.0)

    def test_bulk_transfer_repeats(self, two_site_topology):
        hosts = two_site_topology.host_names
        engine = WorkloadEngine(two_site_topology)
        engine.add(
            BulkTransferActor(
                "bulk",
                np.random.default_rng(0),
                src=hosts[0],
                dst=hosts[-1],
                size=10e6,
                repeat=True,
            )
        )
        engine.run(until=5.0)
        stats = engine.stats()[0]
        assert stats["flows_started"] > 1
        assert stats["bytes_delivered"] >= (stats["flows_started"] - 1) * 10e6 * 0.99

    def test_capacity_drift_changes_shared_links(self, two_site_topology):
        engine = WorkloadEngine(two_site_topology)
        drift = engine.add(
            CapacityDriftActor(
                "drift",
                np.random.default_rng(5),
                interval_mean=0.5,
                floor=0.5,
                ceiling=0.9,
            )
        )
        nominal = {name: engine.fluid.link_capacity(name) for name in drift.links}
        engine.run(until=5.0)
        assert drift.changes > 0
        drifted = [
            name for name in drift.links
            if engine.fluid.link_capacity(name) != nominal[name]
        ]
        assert drifted
        for name in drifted:
            assert engine.fluid.link_capacity(name) < nominal[name]
        # Host access links are never touched by the default selection.
        for link in two_site_topology.links:
            if two_site_topology.is_host(link.a) or two_site_topology.is_host(link.b):
                assert engine.fluid.link_capacity(link.name) == link.capacity

    def test_rival_broadcast_starts_offset_and_reports_span(self, two_site_topology):
        config = config_for(80)
        engine = WorkloadEngine(two_site_topology)
        primary = engine.add(
            BroadcastActor("primary", config, rng=np.random.default_rng(1))
        )
        rival = engine.add(
            BroadcastActor(
                "rival",
                config,
                root=two_site_topology.host_names[-1],
                rng=np.random.default_rng(2),
                start_time=0.05,
                blocking=False,
            )
        )
        engine.run()
        assert primary.done
        # The rival's completion times are absolute; its duration is a span.
        if rival.done:
            assert rival.result.completion_times[rival.root] == 0.05
            assert rival.result.duration < max(
                rival.result.completion_times.values()
            )

    def test_contention_slows_the_measured_broadcast(self, two_site_topology):
        config = config_for(200)
        solo, _ = run_workload_iteration(
            two_site_topology, config, None, None, 13, 0, NONE
        )
        contended, _ = run_workload_iteration(
            two_site_topology, config, None, None, 13, 0,
            rival_broadcast_workload(rivals=1, stagger=0.0),
        )
        assert contended.duration > solo.duration


# ---------------------------------------------------------------------- #
# engine surface
# ---------------------------------------------------------------------- #
class TestEngine:
    def test_duplicate_actor_labels_rejected(self, two_site_topology):
        engine = WorkloadEngine(two_site_topology)
        engine.add(
            PoissonTrafficActor("bg", np.random.default_rng(0), 1e6, 1e6)
        )
        with pytest.raises(ValueError, match="duplicate"):
            engine.add(
                PoissonTrafficActor("bg", np.random.default_rng(1), 1e6, 1e6)
            )

    def test_background_only_run_needs_horizon(self, two_site_topology):
        engine = WorkloadEngine(two_site_topology)
        engine.add(
            PoissonTrafficActor("bg", np.random.default_rng(0), 1e6, 1e6)
        )
        with pytest.raises(ValueError, match="horizon"):
            engine.run()

    def test_clocks_stay_in_sync(self, two_site_topology):
        config = config_for(80)
        engine = WorkloadEngine(two_site_topology)
        engine.add(BroadcastActor("primary", config, rng=np.random.default_rng(4)))
        engine.run()
        assert engine.fluid.now <= engine.now + 1e-9


# ---------------------------------------------------------------------- #
# declarative specs
# ---------------------------------------------------------------------- #
class TestWorkloadSpec:
    def test_presets_resolve_by_name(self):
        for name in WORKLOAD_PRESETS:
            spec = workload_from_name(name)
            assert isinstance(spec, WorkloadSpec)
        assert workload_from_name(None).name == "none"
        spec = WORKLOAD_PRESETS["mixed"]
        assert workload_from_name(spec) is spec

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            workload_from_name("nope")

    def test_unknown_actor_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown actor kind"):
            ActorSpec(kind="quantum", label="x")

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError, match="duplicate actor labels"):
            WorkloadSpec(
                name="bad",
                actors=(actor("poisson", "a"), actor("onoff", "a")),
            )

    def test_metadata_shape(self):
        spec = mixed_workload(0.5)
        meta = spec.metadata()
        assert meta["workload"] == spec.name
        assert meta["workload_actors"] == spec.actor_count + 1
        assert meta["interference_intensity"] == 0.5
        assert sum(meta["workload_kinds"].values()) == spec.actor_count

    def test_specs_are_picklable(self):
        import pickle

        for name, spec in WORKLOAD_PRESETS.items():
            assert pickle.loads(pickle.dumps(spec)) == spec


# ---------------------------------------------------------------------- #
# campaign integration
# ---------------------------------------------------------------------- #
class TestCampaignIntegration:
    def test_workload_campaign_records_stats(self, two_site_topology):
        config = config_for(60)
        record = MeasurementCampaign(
            two_site_topology,
            config,
            seed=11,
            workload=cross_traffic_workload(intensity=0.5, sources=1),
        ).run(2)
        assert record.iterations == 2
        assert len(record.workload_stats) == 2
        kinds = {row["kind"] for row in record.workload_stats[0]}
        assert {"broadcast", "poisson"} <= kinds

    def test_cli_run_with_workload(self, tmp_path, capsys):
        import json

        from repro.cli import main

        path = tmp_path / "wl.json"
        code = main(
            [
                "run", "G-T", "--per-site", "2", "--iterations", "2",
                "--fragments", "60", "--workload", "churn",
                "--json", str(path),
            ]
        )
        assert code == 0, capsys.readouterr().err
        payload = json.loads(path.read_text())
        assert payload["workload"] == "churn-1"
        assert payload["workload_actors"] == 2
        assert payload["interference_intensity"] == 1.0
