"""Tests for NetPIPE-style point-to-point probes."""

import numpy as np
import pytest

from repro.network.grid5000 import build_multi_site, default_cluster_of
from repro.tomography.netpipe import NetPipeProbe


class TestNetPipeProbe:
    def test_intra_cluster_peak_near_890_mbps(self, two_site_topology):
        probe = NetPipeProbe(two_site_topology)
        grenoble = [h for h in two_site_topology.host_names if h.startswith("grenoble")]
        result = probe.probe(grenoble[0], grenoble[1])
        assert result.peak_megabits == pytest.approx(890.0, rel=0.05)

    def test_inter_site_peak_below_intra_cluster(self, two_site_topology):
        probe = NetPipeProbe(two_site_topology)
        hosts = two_site_topology.host_names
        grenoble = [h for h in hosts if h.startswith("grenoble")]
        toulouse = [h for h in hosts if h.startswith("toulouse")]
        intra = probe.probe(grenoble[0], grenoble[1])
        inter = probe.probe(grenoble[0], toulouse[0])
        assert inter.peak_megabits < intra.peak_megabits
        assert inter.peak_megabits > 0.5 * intra.peak_megabits

    def test_bandwidth_increases_with_message_size(self, two_site_topology):
        probe = NetPipeProbe(two_site_topology)
        grenoble = [h for h in two_site_topology.host_names if h.startswith("grenoble")]
        result = probe.probe(grenoble[0], grenoble[1])
        assert list(result.bandwidths) == sorted(result.bandwidths)

    def test_repeated_probes_have_negligible_variance(self, two_site_topology):
        """The contrast with the BitTorrent metric (Fig. 5): NetPIPE is stable."""
        probe = NetPipeProbe(two_site_topology)
        grenoble = [h for h in two_site_topology.host_names if h.startswith("grenoble")]
        values = probe.repeated_peak(grenoble[0], grenoble[1], repeats=5)
        assert np.std(values) / np.mean(values) < 1e-9

    def test_same_host_rejected(self, two_site_topology):
        probe = NetPipeProbe(two_site_topology)
        host = two_site_topology.host_names[0]
        with pytest.raises(ValueError):
            probe.probe(host, host)

    def test_invalid_message_sizes_rejected(self, two_site_topology):
        probe = NetPipeProbe(two_site_topology)
        hosts = two_site_topology.host_names
        with pytest.raises(ValueError):
            probe.probe(hosts[0], hosts[1], message_sizes=[])
        with pytest.raises(ValueError):
            probe.probe(hosts[0], hosts[1], message_sizes=[0])
        with pytest.raises(ValueError):
            probe.repeated_peak(hosts[0], hosts[1], repeats=0)

    def test_disabling_tcp_window_removes_wan_penalty(self):
        topo = build_multi_site(
            {
                "bordeaux": {"bordereau": 1},
                "toulouse": {default_cluster_of("toulouse"): 1},
            }
        )
        hosts = topo.host_names
        bordeaux = [h for h in hosts if h.startswith("bordeaux")][0]
        toulouse = [h for h in hosts if h.startswith("toulouse")][0]
        capped = NetPipeProbe(topo).probe(bordeaux, toulouse, message_sizes=[64 * 1024 * 1024])
        uncapped = NetPipeProbe(topo, tcp_window=None).probe(
            bordeaux, toulouse, message_sizes=[64 * 1024 * 1024]
        )
        assert uncapped.peak_bandwidth > capped.peak_bandwidth
