"""Tests for the hierarchical clustering extension (the paper's future work)."""

import pytest

from repro.clustering.hierarchical import HierarchicalClustering, recursive_louvain
from repro.clustering.nmi import overlapping_nmi
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


def nested_graph():
    """Two super-clusters, one of which contains two tight sub-clusters.

    Mirrors the B-T situation: Toulouse (one flat cluster) plus Bordeaux
    (internally split by a bottleneck).
    """
    graph = WeightedGraph()
    sub_a = [f"a{i}" for i in range(5)]
    sub_b = [f"b{i}" for i in range(5)]
    flat = [f"t{i}" for i in range(10)]

    def clique(nodes, weight):
        for i in range(len(nodes)):
            for j in range(i + 1, len(nodes)):
                graph.add_edge(nodes[i], nodes[j], weight)

    clique(sub_a, 100.0)
    clique(sub_b, 100.0)
    clique(flat, 100.0)
    # Bordeaux-internal bottleneck: sub_a and sub_b still talk, but less.
    for a in sub_a:
        for b in sub_b:
            graph.add_edge(a, b, 25.0)
    # WAN: very little traffic between the super-clusters.
    graph.add_edge("a0", "t0", 1.0)
    graph.add_edge("b0", "t1", 1.0)
    return graph, sub_a, sub_b, flat


class TestRecursiveLouvain:
    def test_top_level_matches_single_level_louvain(self):
        graph, sub_a, sub_b, flat = nested_graph()
        hierarchy = recursive_louvain(graph)
        top = hierarchy.top_level()
        assert top.num_clusters == 2
        assert top.same_cluster(sub_a[0], sub_b[0])
        assert not top.same_cluster(sub_a[0], flat[0])

    def test_recursion_recovers_the_nested_split(self):
        graph, sub_a, sub_b, flat = nested_graph()
        hierarchy = recursive_louvain(graph, min_cluster_size=3)
        fine = hierarchy.flatten()
        assert fine.num_clusters == 3
        assert fine.same_cluster(sub_a[0], sub_a[-1])
        assert not fine.same_cluster(sub_a[0], sub_b[0])
        assert fine.same_cluster(flat[0], flat[-1])

    def test_best_match_picks_the_right_level(self):
        graph, sub_a, sub_b, flat = nested_graph()
        hierarchy = recursive_louvain(graph, min_cluster_size=3)
        two_level_truth = Partition([set(sub_a) | set(sub_b), set(flat)])
        three_level_truth = Partition([set(sub_a), set(sub_b), set(flat)])
        _, nmi_two = hierarchy.best_match(two_level_truth)
        _, nmi_three = hierarchy.best_match(three_level_truth)
        assert nmi_two == pytest.approx(1.0)
        assert nmi_three == pytest.approx(1.0)

    def test_flat_graph_is_not_shattered(self, two_community_graph):
        hierarchy = recursive_louvain(two_community_graph, min_cluster_size=2)
        # The two cliques are homogeneous: recursion must not split them.
        assert hierarchy.flatten().num_clusters == 2

    def test_levels_are_coarse_to_fine(self):
        graph, *_ = nested_graph()
        hierarchy = recursive_louvain(graph, min_cluster_size=3)
        levels = hierarchy.levels()
        counts = [level.num_clusters for level in levels]
        assert counts == sorted(counts)
        assert hierarchy.num_levels() == len(levels)

    def test_min_cluster_size_blocks_small_splits(self):
        graph, sub_a, sub_b, flat = nested_graph()
        hierarchy = recursive_louvain(graph, min_cluster_size=6)
        # Sub-clusters have 5 members < 6, so the Bordeaux split is rejected.
        assert hierarchy.flatten().num_clusters == 2

    def test_describe_mentions_every_root(self):
        graph, *_ = nested_graph()
        hierarchy = recursive_louvain(graph)
        text = hierarchy.describe()
        assert text.count("- ") >= len(hierarchy.roots)

    def test_parameter_validation(self, two_community_graph):
        with pytest.raises(ValueError):
            recursive_louvain(two_community_graph, min_cluster_size=1)
        with pytest.raises(ValueError):
            recursive_louvain(two_community_graph, max_depth=0)

    def test_flatten_covers_all_nodes(self):
        graph, *_ = nested_graph()
        hierarchy = recursive_louvain(graph, min_cluster_size=3)
        assert hierarchy.flatten().nodes() == set(graph.nodes())
        assert hierarchy.top_level().nodes() == set(graph.nodes())
