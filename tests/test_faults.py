"""Fault-injection subsystem and fault-tolerant campaign machinery.

Covers the declarative fault plans (:mod:`repro.faults.spec`), the
injector actors on the shared workload agenda, determinism under faults
(same seed ⇒ byte-identical records, empty plan ⇒ no-op), the
checkpoint/resume path of :class:`~repro.tomography.measurement
.MeasurementCampaign`, quorum-based graceful degradation, and the
duration-spike failure detector of :mod:`repro.tomography.faults`.
"""

import pickle

import numpy as np
import pytest

from repro.experiments.datasets import dataset
from repro.faults import (
    FAULT_NAMES,
    FAULT_PRESETS,
    NO_FAULTS,
    FaultPlan,
    FaultSpec,
    blackout_plan,
    build_fault_actors,
    chaos_plan,
    fault,
    fault_plan_from_name,
    link_failure_plan,
    migrating_plan,
    route_flap_plan,
    tenant_cycle_plan,
    tracker_outage_plan,
)
from repro.tomography.faults import (
    DETECT_FACTOR,
    detect_epochs,
    detect_failure,
    fault_epoch_onsets,
    fault_onset_iteration,
    run_fault_study,
)
from repro.tomography.measurement import MeasurementCampaign
from repro.tomography.pipeline import default_swarm_config
from repro.workloads.spec import run_workload_iteration


@pytest.fixture
def gt_dataset():
    return dataset("G-T", per_site=3)


@pytest.fixture
def small_config():
    return default_swarm_config(150)


def record_digest(record):
    """Byte-level projection of a measurement record for equality checks."""
    return [
        (
            r.root,
            r.duration,
            tuple(r.fragments.labels),
            r.fragments.counts.tobytes(),
        )
        for r in record.results
    ]


# ---------------------------------------------------------------------- #
# declarative specs and presets
# ---------------------------------------------------------------------- #
class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            fault("meteor-strike", "boom")

    def test_empty_label_rejected(self):
        with pytest.raises(ValueError, match="label"):
            FaultSpec(kind="link-failure", label="")

    def test_iteration_scoping(self):
        spec = fault("link-failure", "lf", from_iteration=2, until_iteration=4)
        assert [spec.applies_to(i) for i in range(5)] == [
            False, False, True, True, False,
        ]

    def test_plan_truthiness_and_activity(self):
        assert not NO_FAULTS
        assert not NO_FAULTS.active_in(0)
        plan = blackout_plan(from_iteration=2)
        assert plan
        assert not plan.active_in(1)
        assert plan.active_in(2)

    def test_plans_are_picklable(self):
        for name, plan in FAULT_PRESETS.items():
            clone = pickle.loads(pickle.dumps(plan))
            assert clone == plan, name

    def test_preset_resolution(self):
        assert fault_plan_from_name(None) is NO_FAULTS
        assert fault_plan_from_name("none") is NO_FAULTS
        assert fault_plan_from_name("chaos").name.startswith("chaos")
        plan = link_failure_plan(intensity=2.0)
        assert fault_plan_from_name(plan) is plan
        with pytest.raises(ValueError, match="unknown fault plan"):
            fault_plan_from_name("gremlins")
        assert set(FAULT_NAMES) == set(FAULT_PRESETS)

    def test_intensity_must_be_positive(self):
        for builder in (
            link_failure_plan, route_flap_plan, tracker_outage_plan,
            tenant_cycle_plan, chaos_plan,
        ):
            with pytest.raises(ValueError, match="positive"):
                builder(intensity=0.0)

    def test_metadata_keys(self):
        meta = chaos_plan().metadata()
        assert meta["fault_injectors"] == 4
        assert meta["fault_intensity"] == 1.0
        assert "link-failure" in meta["fault_kinds"]

    def test_every_preset_builds_actors(self, gt_dataset, small_config):
        for name, plan in FAULT_PRESETS.items():
            actors = build_fault_actors(
                plan, small_config, gt_dataset.hosts, None, 7, iteration=5
            )
            assert len(actors) == sum(
                1 for s in plan.faults if s.applies_to(5)
            ), name

    def test_blackout_inert_before_onset(self, gt_dataset, small_config):
        plan = blackout_plan(from_iteration=2)
        assert build_fault_actors(
            plan, small_config, gt_dataset.hosts, None, 7, iteration=1
        ) == []


# ---------------------------------------------------------------------- #
# determinism under injected faults
# ---------------------------------------------------------------------- #
class TestFaultDeterminism:
    def _campaign(self, ds, config, faults, **kwargs):
        return MeasurementCampaign(
            ds.topology, config, hosts=ds.hosts, seed=2012, faults=faults,
            **kwargs,
        )

    def test_empty_plan_is_a_bitwise_noop(self, gt_dataset, small_config):
        bare = self._campaign(gt_dataset, small_config, None).run(2)
        empty = self._campaign(gt_dataset, small_config, NO_FAULTS).run(2)
        named = self._campaign(gt_dataset, small_config, "none").run(2)
        assert record_digest(bare) == record_digest(empty) == record_digest(named)
        # The empty plan resolves to "no faults at all": the single-tenant
        # fast path stays available, workload stats stay absent.
        assert self._campaign(gt_dataset, small_config, "none").faults is None

    def test_same_seed_replays_chaos_bit_for_bit(self, gt_dataset, small_config):
        first = self._campaign(gt_dataset, small_config, "chaos").run(2)
        second = self._campaign(gt_dataset, small_config, "chaos").run(2)
        assert record_digest(first) == record_digest(second)
        assert first.workload_stats == second.workload_stats

    @pytest.mark.parametrize("preset", sorted(set(FAULT_NAMES) - {"none"}))
    def test_fixed_and_event_stepping_agree_under_faults(
        self, gt_dataset, preset
    ):
        records = {}
        for stepping in ("fixed", "event"):
            config = default_swarm_config(150, stepping=stepping)
            records[stepping] = self._campaign(
                gt_dataset, config, preset
            ).run(3)
        assert record_digest(records["fixed"]) == record_digest(records["event"])

    def test_stepping_agrees_under_migrating_reroute(self):
        # The self-healing path (avoid-set recompute + live re-pin) must
        # keep the two control-loop steppings bit-for-bit identical, like
        # every other subsystem.
        from repro.scenarios import get_scenario

        digests = {}
        for stepping in ("fixed", "event"):
            summary = get_scenario("MIGRATING-BOTTLENECK").run(
                iterations=4, num_fragments=120, per_site=2,
                stepping=stepping,
            )
            digests[stepping] = record_digest(summary["result"].record)
        assert digests["fixed"] == digests["event"]

    def test_blackout_shows_up_as_duration_spike(self, gt_dataset, small_config):
        record = self._campaign(
            gt_dataset, small_config, blackout_plan(from_iteration=2)
        ).run(4)
        healthy, failed = record.durations[:2], record.durations[2:]
        assert max(failed) > DETECT_FACTOR * max(healthy)


# ---------------------------------------------------------------------- #
# injector behaviour observable through iteration stats
# ---------------------------------------------------------------------- #
class TestInjectorStats:
    def _stats(self, ds, config, plan, iteration=0, seed=2012):
        _, stats = run_workload_iteration(
            ds.topology, config, ds.hosts, ds.hosts[0], seed, iteration,
            None, faults=plan,
        )
        return {row["actor"]: row for row in stats}

    def test_link_failure_rows(self, gt_dataset, small_config):
        rows = self._stats(gt_dataset, small_config, link_failure_plan(3.0))
        row = rows["linkfail"]
        assert row["kind"] == "link-failure"
        assert row["fault"] is True
        assert row["failures"] >= 1
        assert row["repairs"] <= row["failures"]

    def test_route_flap_rows(self, gt_dataset, small_config):
        rows = self._stats(gt_dataset, small_config, route_flap_plan(3.0))
        assert rows["flap"]["flaps"] >= 1

    def test_tracker_outage_and_latecomer_rows(self, gt_dataset, small_config):
        rows = self._stats(gt_dataset, small_config, tracker_outage_plan(2.0))
        assert rows["outage"]["outages"] >= 1
        assert rows["latecomer"]["kind"] == "tenant-cycle"

    def test_tenant_cycle_rows(self, gt_dataset, small_config):
        rows = self._stats(gt_dataset, small_config, tenant_cycle_plan(1.0))
        arrivals = sum(
            row.get("arrivals", 0) for row in rows.values()
            if row["kind"] == "tenant-cycle"
        )
        assert arrivals >= 1


# ---------------------------------------------------------------------- #
# checkpoint / resume
# ---------------------------------------------------------------------- #
class TestCheckpointResume:
    def _campaign(self, ds, config, tmp_path, seed=2012, **kwargs):
        return MeasurementCampaign(
            ds.topology, config, hosts=ds.hosts, seed=seed,
            checkpoint=tmp_path / "ckpt", **kwargs,
        )

    def test_interrupted_campaign_resumes_byte_identical(
        self, gt_dataset, small_config, tmp_path
    ):
        uninterrupted = MeasurementCampaign(
            gt_dataset.topology, small_config, hosts=gt_dataset.hosts, seed=2012
        ).run(4)
        # "Crash" after two iterations; a fresh campaign object resumes from
        # the on-disk checkpoints and must reproduce the uninterrupted run.
        self._campaign(gt_dataset, small_config, tmp_path).run(2)
        assert len(list((tmp_path / "ckpt").glob("iter_*.pkl"))) == 2
        resumed = self._campaign(gt_dataset, small_config, tmp_path).run(4)
        assert record_digest(resumed) == record_digest(uninterrupted)

    def test_resume_false_ignores_checkpoints(
        self, gt_dataset, small_config, tmp_path
    ):
        campaign = self._campaign(gt_dataset, small_config, tmp_path)
        first = campaign.run(2)
        fresh = self._campaign(gt_dataset, small_config, tmp_path)
        rerun = fresh.run(2, resume=False)
        assert record_digest(rerun) == record_digest(first)

    def test_seed_mismatch_is_rejected(self, gt_dataset, small_config, tmp_path):
        self._campaign(gt_dataset, small_config, tmp_path).run(1)
        other = self._campaign(gt_dataset, small_config, tmp_path, seed=99)
        with pytest.raises(ValueError, match="seed"):
            other.run(1)

    def test_corrupt_checkpoint_is_rerun(self, gt_dataset, small_config, tmp_path):
        baseline = self._campaign(gt_dataset, small_config, tmp_path).run(2)
        victim = next(iter((tmp_path / "ckpt").glob("iter_*.pkl")))
        victim.write_bytes(b"not a pickle")
        resumed = self._campaign(gt_dataset, small_config, tmp_path).run(2)
        assert record_digest(resumed) == record_digest(baseline)

    def test_checkpoints_work_under_faults(self, gt_dataset, small_config, tmp_path):
        uninterrupted = MeasurementCampaign(
            gt_dataset.topology, small_config, hosts=gt_dataset.hosts,
            seed=2012, faults="chaos",
        ).run(3)
        self._campaign(gt_dataset, small_config, tmp_path, faults="chaos").run(1)
        resumed = self._campaign(
            gt_dataset, small_config, tmp_path, faults="chaos"
        ).run(3)
        assert record_digest(resumed) == record_digest(uninterrupted)
        assert resumed.workload_stats == uninterrupted.workload_stats


# ---------------------------------------------------------------------- #
# quorum-based graceful degradation
# ---------------------------------------------------------------------- #
class TestQuorum:
    @pytest.fixture
    def failing_setup(self, gt_dataset):
        """A blackout severe enough that post-onset broadcasts overrun
        ``max_sim_time`` and raise — healthy iterations take ≈0.044 s,
        blacked-out ones ≈1.1 s."""
        config = default_swarm_config(150, max_sim_time=0.5)
        return gt_dataset, config, blackout_plan(from_iteration=2)

    def test_without_quorum_the_failure_propagates(self, failing_setup):
        ds, config, plan = failing_setup
        campaign = MeasurementCampaign(
            ds.topology, config, hosts=ds.hosts, seed=2012, faults=plan
        )
        with pytest.raises(RuntimeError, match="max_sim_time"):
            campaign.run(4)

    def test_quorum_met_degrades_gracefully(self, failing_setup):
        ds, config, plan = failing_setup
        record = MeasurementCampaign(
            ds.topology, config, hosts=ds.hosts, seed=2012, faults=plan
        ).run(4, quorum=2)
        assert record.degraded
        assert record.iterations == 2
        assert record.failed_iterations == [2, 3]
        assert record.planned_iterations == 4
        assert record.aggregate() is not None

    def test_quorum_unmet_raises(self, failing_setup):
        ds, config, _ = failing_setup
        with pytest.raises(RuntimeError, match="quorum not met"):
            MeasurementCampaign(
                ds.topology, config, hosts=ds.hosts, seed=2012,
                faults=blackout_plan(from_iteration=1),
            ).run(4, quorum=3)

    def test_quorum_validation(self, gt_dataset, small_config):
        campaign = MeasurementCampaign(
            gt_dataset.topology, small_config, hosts=gt_dataset.hosts, seed=1
        )
        with pytest.raises(ValueError, match="quorum"):
            campaign.run(2, quorum=0)
        with pytest.raises(ValueError, match="quorum"):
            campaign.run(2, quorum=3)

    def test_healthy_campaign_with_quorum_is_not_degraded(
        self, gt_dataset, small_config
    ):
        bare = MeasurementCampaign(
            gt_dataset.topology, small_config, hosts=gt_dataset.hosts, seed=2012
        ).run(2)
        quorate = MeasurementCampaign(
            gt_dataset.topology, small_config, hosts=gt_dataset.hosts, seed=2012
        ).run(2, quorum=1)
        assert not quorate.degraded
        assert record_digest(quorate) == record_digest(bare)


# ---------------------------------------------------------------------- #
# detection metric and the fault study
# ---------------------------------------------------------------------- #
class TestDetection:
    def test_detects_first_spike_after_onset(self):
        out = detect_failure([1.0, 1.0, 1.0, 2.9, 3.0], onset=3,
                             expected_duration=1.0)
        assert out["detected"]
        assert out["detected_iteration"] == 3
        assert out["iterations_to_detect"] == 1
        assert out["time_to_detect_s"] == pytest.approx(2.9)
        assert out["baseline_duration_s"] == pytest.approx(1.0)

    def test_charges_every_post_onset_measurement(self):
        out = detect_failure([1.0, 1.0, 1.1, 1.0, 2.0], onset=2,
                             expected_duration=1.0)
        assert out["detected_iteration"] == 4
        assert out["iterations_to_detect"] == 3
        assert out["time_to_detect_s"] == pytest.approx(1.1 + 1.0 + 2.0)

    def test_falls_back_to_expected_duration_at_onset_zero(self):
        out = detect_failure([5.0, 5.0], onset=0, expected_duration=1.0)
        assert out["baseline_duration_s"] == 1.0
        assert out["detected_iteration"] == 0

    def test_no_spike_means_no_detection(self):
        out = detect_failure([1.0, 1.0, 1.05], onset=2, expected_duration=1.0)
        assert not out["detected"]
        assert out["time_to_detect_s"] is None

    def test_onset_of_plans(self):
        assert fault_onset_iteration(NO_FAULTS) == 0
        assert fault_onset_iteration(blackout_plan(from_iteration=3)) == 3
        assert fault_onset_iteration(chaos_plan()) == 0

    def test_onset_of_mixed_from_iteration_specs(self):
        plan = FaultPlan(
            name="mixed",
            faults=(
                fault("link-failure", "late", from_iteration=5),
                fault("route-flap", "early", from_iteration=2),
                fault("tracker-outage", "always"),
            ),
        )
        assert fault_onset_iteration(plan) == 0
        assert fault_epoch_onsets(plan) == [0, 2, 5]
        assert fault_epoch_onsets(NO_FAULTS) == []
        migrating = migrating_plan(
            links=("l1", "l2"), onsets=(2, 4), reroute=False
        )
        assert fault_onset_iteration(migrating) == 2
        assert fault_epoch_onsets(migrating) == [2, 4]

    def test_migrating_plan_validation(self):
        with pytest.raises(ValueError, match="at least one"):
            migrating_plan(links=(), onsets=())
        with pytest.raises(ValueError, match="one onset per"):
            migrating_plan(links=("l1", "l2"), onsets=(2,))
        with pytest.raises(ValueError, match="strictly increasing"):
            migrating_plan(links=("l1", "l2"), onsets=(4, 2))

    def test_bad_detect_factor_and_window_rejected(self):
        with pytest.raises(ValueError, match="detect_factor"):
            detect_failure([1.0, 2.0], onset=1, expected_duration=1.0,
                           detect_factor=1.0)
        with pytest.raises(ValueError, match="detect_factor"):
            detect_failure([1.0, 2.0], onset=1, expected_duration=1.0,
                           detect_factor=0.5)
        with pytest.raises(ValueError, match="window"):
            detect_failure([1.0, 2.0], onset=1, expected_duration=1.0,
                           window=0)

    def test_empty_and_all_failed_campaigns(self):
        empty = detect_failure([], onset=0, expected_duration=1.0)
        assert not empty["detected"]
        assert empty["baseline_duration_s"] == 1.0
        assert empty["time_to_detect_s"] is None
        lost = detect_failure([None, None, None], onset=1,
                              expected_duration=1.0)
        assert not lost["detected"]
        assert lost["detected_iteration"] is None

    def test_lost_iterations_are_skipped_not_charged(self):
        out = detect_failure([1.0, 1.0, None, 5.0], onset=2,
                             expected_duration=1.0)
        assert out["detected_iteration"] == 3
        assert out["iterations_to_detect"] == 2
        assert out["time_to_detect_s"] == pytest.approx(5.0)

    def test_rolling_baseline_tracks_drift(self):
        # Duration creeps up ~10% per iteration — a static pre-onset
        # median (1.0) would cross the 1.25x threshold at 1.33 and flag
        # the drift itself; the rolling median + MAD band absorbs the
        # drift and still trips on the genuine 4.0 spike.
        drifting = [1.0, 1.0, 1.1, 1.21, 1.33, 1.46, 1.61, 4.0]
        out = detect_failure(drifting, onset=2, expected_duration=1.0)
        assert out["detected_iteration"] == 7
        assert out["iterations_to_detect"] == 6
        static_threshold = DETECT_FACTOR * 1.0
        assert any(d > static_threshold for d in drifting[2:7])

    def test_detect_epochs_remaps_iterations(self):
        durations = [1.0, 1.0, 4.0, 4.0, 0.9, 6.0]
        verdicts = detect_epochs(durations, onsets=[2, 4],
                                 expected_duration=1.0)
        assert [v["epoch"] for v in verdicts] == [0, 1]
        first, second = verdicts
        assert first["detected_iteration"] == 2
        assert first["end_iteration"] == 4
        # Epoch 1 is judged against the *pre-first-onset* healthy
        # history; its detection index maps back to campaign iteration 5.
        assert second["detected_iteration"] == 5
        assert second["fault_onset_iteration"] == 4
        assert second["iterations_to_detect"] == 2

    def test_detect_epochs_onsets_must_increase(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            detect_epochs([1.0, 2.0], onsets=[1, 1], expected_duration=1.0)

    def test_run_fault_study_headline_metric(self, gt_dataset):
        summary = run_fault_study(
            gt_dataset, faults="blackout", iterations=4, num_fragments=150,
            seed=2012,
        )
        assert summary["faults"] == "blackout"
        assert summary["detected"]
        assert summary["detected_iteration"] >= summary["fault_onset_iteration"]
        assert summary["time_to_detect_s"] > 0
        assert summary["link_failures"] >= 1
        assert not summary["degraded"]
        assert summary["achieved_iterations"] == 4

    def test_run_fault_study_with_quorum_and_workload(self, gt_dataset):
        summary = run_fault_study(
            gt_dataset, faults=blackout_plan(from_iteration=2),
            workload="rival", iterations=4, num_fragments=150, seed=2012,
            quorum=2,
        )
        assert summary["workload"] == "rival-1"
        assert summary["rival_broadcasts"] >= 1
        assert summary["iterations"] == 4
