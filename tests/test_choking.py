"""Unit tests for the tit-for-tat choker."""

import numpy as np
import pytest

from repro.bittorrent.choking import DEFAULT_UPLOAD_SLOTS, ChokingPolicy
from repro.bittorrent.peer import PeerState


def make_peer(name="up", neighbors=(), fragments=20, seed_peer=False):
    peer = PeerState(name=name, index=0, num_fragments=fragments)
    peer.neighbors = set(neighbors)
    if seed_peer:
        peer.make_seed()
    return peer


class TestChokingPolicy:
    def test_defaults_match_reference_client(self):
        policy = ChokingPolicy()
        assert policy.upload_slots == DEFAULT_UPLOAD_SLOTS == 4
        assert policy.optimistic_every == 3

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            ChokingPolicy(upload_slots=0)
        with pytest.raises(ValueError):
            ChokingPolicy(optimistic_every=0)

    def test_no_interested_peers_means_no_unchokes(self):
        policy = ChokingPolicy()
        peer = make_peer(neighbors={"a", "b"}, seed_peer=True)
        chosen = policy.rechoke(peer, [], 0, np.random.default_rng(0))
        assert chosen == set()

    def test_slots_limit_is_respected(self):
        policy = ChokingPolicy(upload_slots=4)
        interested = [f"p{i}" for i in range(10)]
        peer = make_peer(neighbors=interested, seed_peer=True)
        chosen = policy.rechoke(peer, interested, 0, np.random.default_rng(0))
        assert len(chosen) == 4
        assert chosen <= set(interested)

    def test_fewer_candidates_than_slots(self):
        policy = ChokingPolicy(upload_slots=4)
        peer = make_peer(neighbors={"a", "b"}, seed_peer=True)
        chosen = policy.rechoke(peer, ["a", "b"], 0, np.random.default_rng(0))
        assert chosen == {"a", "b"}

    def test_candidates_outside_neighbor_set_are_ignored(self):
        policy = ChokingPolicy()
        peer = make_peer(neighbors={"a"}, seed_peer=True)
        chosen = policy.rechoke(peer, ["a", "stranger"], 0, np.random.default_rng(0))
        assert chosen == {"a"}

    def test_leecher_reciprocates_fastest_uploaders(self):
        policy = ChokingPolicy(upload_slots=3, optimistic_every=100)
        interested = ["fast", "medium", "slow", "other"]
        peer = make_peer(neighbors=interested, fragments=20)
        peer.receive_fragment(0)  # not a seed, has some data
        peer.credit_download("fast", 1000.0)
        peer.credit_download("medium", 500.0)
        peer.credit_download("slow", 10.0)
        peer.optimistic = "other"
        chosen = policy.rechoke(peer, interested, 1, np.random.default_rng(0))
        # Two regular slots go to the fastest uploaders, one optimistic slot.
        assert {"fast", "medium"} <= chosen
        assert len(chosen) == 3

    def test_seed_rotates_randomly(self):
        policy = ChokingPolicy(upload_slots=2)
        interested = [f"p{i}" for i in range(12)]
        peer = make_peer(neighbors=interested, seed_peer=True)
        rng = np.random.default_rng(7)
        picks = [frozenset(policy.rechoke(peer, interested, r, rng)) for r in range(8)]
        assert len(set(picks)) > 1  # rotation: not always the same pair

    def test_first_round_without_history_is_random_but_valid(self):
        policy = ChokingPolicy(upload_slots=4)
        interested = [f"p{i}" for i in range(8)]
        peer = make_peer(neighbors=interested, fragments=20)
        peer.receive_fragment(1)
        chosen = policy.rechoke(peer, interested, 0, np.random.default_rng(3))
        assert len(chosen) == 4

    def test_optimistic_slot_rotation_changes_target(self):
        policy = ChokingPolicy(upload_slots=2, optimistic_every=1)
        interested = [f"p{i}" for i in range(10)]
        peer = make_peer(neighbors=interested, fragments=20)
        peer.receive_fragment(0)
        peer.credit_download("p0", 100.0)
        rng = np.random.default_rng(11)
        optimistic_targets = set()
        for round_index in range(12):
            policy.rechoke(peer, interested, round_index, rng)
            optimistic_targets.add(peer.optimistic)
        assert len(optimistic_targets) > 1

    def test_determinism_given_same_rng_state(self):
        policy = ChokingPolicy()
        interested = [f"p{i}" for i in range(9)]
        peer_a = make_peer(neighbors=interested, seed_peer=True)
        peer_b = make_peer(neighbors=interested, seed_peer=True)
        chosen_a = policy.rechoke(peer_a, interested, 0, np.random.default_rng(42))
        chosen_b = policy.rechoke(peer_b, interested, 0, np.random.default_rng(42))
        assert chosen_a == chosen_b
