"""The declarative scenario subsystem: specs, registry, catalogue.

The parametrized smoke test runs *every* registered scenario at tiny scale
through the generic CLI entrypoint — adding a scenario to the catalogue
automatically puts it under test.
"""

import json

import pytest

from repro.cli import main
from repro.scenarios import (
    ScenarioSpec,
    all_scenarios,
    families,
    get_scenario,
    register,
    scenario_names,
    unregister,
)
from repro.scenarios.topologies import (
    fat_tree_dataset,
    hetero_uplink_dataset,
    random_bottleneck_dataset,
)

#: Tiny-scale CLI overrides per scenario, so the whole smoke sweep stays fast.
SMOKE_ARGS = {
    "2x2": ["--iterations", "2", "--fragments", "80"],
    "B": ["--iterations", "1", "--fragments", "80", "--per-site", "3"],
    "B-T": ["--iterations", "1", "--fragments", "80", "--per-site", "2"],
    "G-T": ["--iterations", "2", "--fragments", "80", "--per-site", "2"],
    "B-G-T": ["--iterations", "1", "--fragments", "80", "--per-site", "2"],
    "B-G-T-L": ["--iterations", "1", "--fragments", "80", "--per-site", "2"],
    "NESTED": ["--iterations", "1", "--fragments", "80",
               "--set", "alpha=2", "--set", "beta=2", "--set", "gamma=3"],
    "fig4": ["--iterations", "2", "--fragments", "80", "--per-site", "4"],
    "fig5": ["--iterations", "3", "--fragments", "80", "--per-site", "3"],
    "fig13": ["--iterations", "2", "--fragments", "80", "--per-site", "2"],
    "broadcast-efficiency": ["--fragments", "80", "--set", "node_counts=4,8"],
    "baseline-cost": ["--iterations", "1", "--fragments", "80",
                      "--set", "node_counts=4,6"],
    "netpipe": ["--set", "repeats=2"],
    "FATTREE-4x4": ["--iterations", "1", "--fragments", "80",
                    "--set", "racks=3", "--set", "hosts_per_rack=2"],
    "FATTREE-NB": ["--iterations", "1", "--fragments", "80",
                   "--set", "racks=3", "--set", "hosts_per_rack=2"],
    "RANDBOT-1": ["--iterations", "1", "--fragments", "80",
                  "--set", "clusters=3", "--set", "hosts_per_cluster=2",
                  "--set", "num_bottlenecks=1"],
    "RANDBOT-2": ["--iterations", "1", "--fragments", "80",
                  "--set", "clusters=3", "--set", "hosts_per_cluster=2",
                  "--set", "num_bottlenecks=1"],
    "HETERO-UPLINK": ["--iterations", "1", "--fragments", "80",
                      "--per-site", "2"],
    "RIVAL-BROADCAST": ["--iterations", "2", "--fragments", "80",
                        "--per-site", "2"],
    "CROSS-TRAFFIC": ["--iterations", "2", "--fragments", "80",
                      "--per-site", "2"],
    "CHURN": ["--iterations", "2", "--fragments", "80", "--per-site", "2"],
    "MIXED-TENANCY": ["--iterations", "2", "--fragments", "80",
                      "--per-site", "2"],
    "FAULT-INJECTION": ["--iterations", "2", "--fragments", "80",
                        "--per-site", "2"],
    "LINK-BLACKOUT": ["--iterations", "3", "--fragments", "80",
                      "--per-site", "2"],
    "MIGRATING-BOTTLENECK": ["--iterations", "3", "--fragments", "80",
                             "--per-site", "2"],
}


class TestRegistry:
    def test_paper_and_figure_scenarios_registered(self):
        names = set(scenario_names())
        assert {"2x2", "B", "B-T", "G-T", "B-G-T", "B-G-T-L"} <= names
        assert {"fig4", "fig5", "fig13", "broadcast-efficiency",
                "baseline-cost", "netpipe"} <= names

    def test_at_least_three_non_paper_families(self):
        beyond = set(families()) - {"paper", "figure"}
        assert {"fat-tree", "random-bottleneck", "hetero-uplink"} <= beyond

    def test_every_scenario_has_smoke_args(self):
        assert set(scenario_names()) == set(SMOKE_ARGS)

    def test_duplicate_registration_rejected(self):
        spec = get_scenario("G-T")
        with pytest.raises(ValueError, match="already registered"):
            register(spec)

    def test_register_unregister_roundtrip(self):
        spec = ScenarioSpec(
            name="TEST-TMP",
            family="test",
            dataset_factory=lambda: None,
        )
        register(spec)
        try:
            assert get_scenario("TEST-TMP") is spec
        finally:
            unregister("TEST-TMP")
        assert "TEST-TMP" not in scenario_names()

    def test_unknown_scenario_error_lists_available(self):
        with pytest.raises(KeyError, match="G-T"):
            get_scenario("NOPE")

    def test_all_scenarios_family_filter(self):
        paper = all_scenarios(family="paper")
        assert paper
        assert all(spec.family == "paper" for spec in paper)


class TestSpecValidation:
    def test_needs_exactly_one_body(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="bad", family="test")
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="bad",
                family="test",
                dataset_factory=lambda: None,
                runner=lambda **kw: {},
            )

    def test_rejects_bad_campaign_defaults(self):
        with pytest.raises(ValueError):
            ScenarioSpec(
                name="bad", family="test", dataset_factory=lambda: None, iterations=0
            )

    def test_runner_scenario_has_no_dataset(self):
        spec = get_scenario("netpipe")
        assert spec.kind == "runner"
        with pytest.raises(ValueError, match="no dataset"):
            spec.build_dataset()


@pytest.mark.parametrize("name", sorted(SMOKE_ARGS))
def test_scenario_smoke_via_cli(name, tmp_path, capsys):
    """Every registered scenario runs end-to-end through the generic CLI."""
    path = tmp_path / f"{name}.json"
    code = main(["run", name, "--json", str(path)] + SMOKE_ARGS[name])
    out = capsys.readouterr()
    assert code == 0, out.err
    assert out.out.strip()
    payload = json.loads(path.read_text())
    assert payload["scenario"] == name
    assert payload["executor"] == "serial"


class TestGeneratedFamilies:
    def test_fat_tree_oversubscribed_ground_truth_is_per_rack(self):
        ds = fat_tree_dataset(racks=3, hosts_per_rack=2, oversubscription=4.0)
        assert ds.expectation.expected_clusters == 3
        assert ds.ground_truth.num_clusters == 3
        assert len(ds.hosts) == 6

    def test_fat_tree_non_blocking_is_one_cluster(self):
        ds = fat_tree_dataset(racks=3, hosts_per_rack=2, oversubscription=1.0)
        assert ds.expectation.expected_clusters == 1
        assert ds.ground_truth.num_clusters == 1

    def test_fat_tree_validates_shape(self):
        with pytest.raises(ValueError):
            fat_tree_dataset(racks=1)
        with pytest.raises(ValueError):
            fat_tree_dataset(oversubscription=0)

    def test_random_bottleneck_layout_is_seeded(self):
        a = random_bottleneck_dataset(layout_seed=1)
        b = random_bottleneck_dataset(layout_seed=1)
        c = random_bottleneck_dataset(layout_seed=2)
        assert a.expectation.description == b.expectation.description
        assert a.expectation.description != c.expectation.description

    def test_random_bottleneck_ground_truth_counts(self):
        ds = random_bottleneck_dataset(
            clusters=4, hosts_per_cluster=2, num_bottlenecks=2, layout_seed=7
        )
        # two singled-out clusters plus one merged well-connected group
        assert ds.ground_truth.num_clusters == 3
        assert len(ds.hosts) == 8

    def test_random_bottleneck_all_bottlenecked(self):
        ds = random_bottleneck_dataset(
            clusters=3, hosts_per_cluster=2, num_bottlenecks=3
        )
        assert ds.ground_truth.num_clusters == 3

    def test_hetero_uplink_validates(self):
        with pytest.raises(ValueError):
            hetero_uplink_dataset(sites=("grenoble",), uplink_scales=(1.0,))
        with pytest.raises(ValueError):
            hetero_uplink_dataset(uplink_scales=(1.0, 0.5, 0.0))
        with pytest.raises(ValueError):
            hetero_uplink_dataset(
                sites=("grenoble", "atlantis"), uplink_scales=(1.0, 1.0)
            )

    def test_hetero_uplink_sites_are_clusters(self):
        ds = hetero_uplink_dataset(per_site=2)
        assert ds.ground_truth.num_clusters == 3
        assert ds.expectation.expected_clusters == 3

    def test_generated_scenarios_recover_their_ground_truth(self):
        # Small but non-trivial scale: the method should find the planted
        # structure of each new family.
        for name, overrides in (
            ("FATTREE-4x4", {"racks": 3, "hosts_per_rack": 3}),
            ("RANDBOT-1", {"clusters": 3, "hosts_per_cluster": 3,
                           "num_bottlenecks": 1}),
            ("HETERO-UPLINK", {"per_site": 3}),
        ):
            summary = get_scenario(name).run(
                iterations=2, num_fragments=150, **overrides
            )
            assert summary["found_clusters"] == summary["expected_clusters"], name
            assert summary["measured_nmi"] == pytest.approx(1.0), name
