"""Equivalence and unit tests for the vectorized max-min solver.

The scalar progressive-filling implementation in ``repro.network.flows`` is
the reference oracle; the vectorized :class:`~repro.network.solver.FlowSet`
must reproduce it on randomized instances — shared bottlenecks, rate caps,
loopback flows, every mix — and stay feasible under ``validate_allocation``.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.flows import (
    FlowDemand,
    max_min_fair_allocation,
    max_min_fair_allocation_scalar,
    validate_allocation,
)
from repro.network.solver import FlowSet, solve_indexed

RELATIVE_TOL = 1e-6


def assert_allocations_match(flows, capacities):
    """Vectorized and scalar allocations agree and are feasible."""
    scalar = max_min_fair_allocation_scalar(flows, capacities)
    vectorized = max_min_fair_allocation(flows, capacities)
    assert set(scalar) == set(vectorized)
    for flow_id, reference in scalar.items():
        value = vectorized[flow_id]
        if np.isinf(reference):
            assert np.isinf(value)
        else:
            assert value == pytest.approx(reference, rel=RELATIVE_TOL, abs=1e-9)
    validate_allocation(flows, vectorized, capacities)


# --------------------------------------------------------------------- #
# FlowSet unit behaviour
# --------------------------------------------------------------------- #
class TestFlowSet:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ValueError):
            FlowSet([100.0, 0.0])

    def test_rejects_bad_rate_cap(self):
        flow_set = FlowSet([10.0])
        with pytest.raises(ValueError):
            flow_set.add([0], rate_cap=0.0)

    def test_rejects_out_of_range_link(self):
        flow_set = FlowSet([10.0])
        with pytest.raises(IndexError):
            flow_set.add([1])

    def test_single_flow_takes_bottleneck(self):
        flow_set = FlowSet([100.0, 40.0])
        slot = flow_set.add([0, 1])
        assert flow_set.solve()[slot] == pytest.approx(40.0)

    def test_loopback_flow_unbounded(self):
        flow_set = FlowSet([10.0])
        slot = flow_set.add([])
        assert np.isinf(flow_set.solve()[slot])

    def test_loopback_flow_with_cap(self):
        flow_set = FlowSet([10.0])
        slot = flow_set.add([], rate_cap=3.0)
        assert flow_set.solve()[slot] == pytest.approx(3.0)

    def test_duplicate_links_count_once(self):
        flow_set = FlowSet([10.0])
        a = flow_set.add([0, 0, 0])
        b = flow_set.add([0])
        rates = flow_set.solve()
        assert rates[a] == pytest.approx(5.0)
        assert rates[b] == pytest.approx(5.0)

    def test_incremental_add_remove_matches_fresh_solve(self):
        """The maintained incidence equals a from-scratch build at every step."""
        rng = np.random.default_rng(7)
        capacities = rng.uniform(10.0, 200.0, size=12)
        flow_set = FlowSet(capacities)
        live = {}
        for step in range(120):
            if live and rng.random() < 0.4:
                slot = list(live)[int(rng.integers(0, len(live)))]
                flow_set.remove(slot)
                del live[slot]
            else:
                k = int(rng.integers(1, 5))
                route = rng.choice(12, size=k, replace=False)
                cap = None if rng.random() < 0.5 else float(rng.uniform(1.0, 80.0))
                live[flow_set.add(route, cap)] = (tuple(route), cap)
            assert len(flow_set) == len(live)
            rates = flow_set.solve()
            fresh = FlowSet(capacities)
            fresh_slots = {
                slot: fresh.add(route, cap) for slot, (route, cap) in live.items()
            }
            fresh_rates = fresh.solve()
            for slot, fresh_slot in fresh_slots.items():
                assert rates[slot] == pytest.approx(
                    fresh_rates[fresh_slot], rel=RELATIVE_TOL
                )

    def test_remove_unknown_slot_raises(self):
        flow_set = FlowSet([10.0])
        with pytest.raises(KeyError):
            flow_set.remove(0)

    def test_slot_recycling_after_remove(self):
        flow_set = FlowSet([10.0])
        slot = flow_set.add([0])
        flow_set.remove(slot)
        again = flow_set.add([0])
        assert flow_set.solve()[again] == pytest.approx(10.0)

    def test_pool_growth_beyond_initial_capacity(self):
        flow_set = FlowSet([1000.0])
        slots = [flow_set.add([0]) for _ in range(100)]
        rates = flow_set.solve()
        for slot in slots:
            assert rates[slot] == pytest.approx(10.0)

    def test_solve_indexed_wrapper(self):
        rates = solve_indexed([[0], [0]], [10.0], [None, 3.0])
        assert rates[0] == pytest.approx(7.0)
        assert rates[1] == pytest.approx(3.0)


# --------------------------------------------------------------------- #
# equivalence with the scalar oracle
# --------------------------------------------------------------------- #
class TestScalarEquivalence:
    def test_dispatch_uses_vectorized_beyond_threshold(self):
        # 9 flows on a shared link: the dispatching entry point must agree
        # with the scalar oracle no matter which path served it.
        flows = [FlowDemand(f"f{i}", ("l",)) for i in range(9)]
        assert_allocations_match(flows, {"l": 90.0})

    def test_shared_bottleneck_with_caps_and_loopbacks(self):
        flows = [
            FlowDemand("a", ("access0", "core")),
            FlowDemand("b", ("access1", "core"), rate_cap=2.0),
            FlowDemand("c", ("access2", "core")),
            FlowDemand("loop", (), rate_cap=5.0),
            FlowDemand("free", ()),
            FlowDemand("d", ("access0",)),
            FlowDemand("e", ("access1",)),
            FlowDemand("f", ("access2", "core")),
            FlowDemand("g", ("core",)),
            FlowDemand("h", ("core",), rate_cap=0.5),
        ]
        capacities = {"core": 12.0, "access0": 8.0, "access1": 6.0, "access2": 9.0}
        assert_allocations_match(flows, capacities)

    def test_many_flows_through_bottleneck(self):
        n = 64
        flows = [FlowDemand(f"f{i}", (f"acc{i}", "core")) for i in range(n)]
        capacities = {"core": 125e6}
        capacities.update({f"acc{i}": 111e6 for i in range(n)})
        assert_allocations_match(flows, capacities)


@st.composite
def random_scenario(draw):
    num_links = draw(st.integers(min_value=1, max_value=8))
    link_names = [f"L{i}" for i in range(num_links)]
    capacities = {
        name: draw(st.floats(min_value=1.0, max_value=1000.0)) for name in link_names
    }
    # Enough flows to exercise the vectorized dispatch path most of the time.
    num_flows = draw(st.integers(min_value=1, max_value=40))
    flows = []
    for i in range(num_flows):
        if draw(st.booleans()) or num_links == 0:
            k = draw(st.integers(min_value=1, max_value=num_links))
            links = tuple(draw(st.permutations(link_names))[:k])
        else:
            links = ()
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.5, max_value=500.0)))
        flows.append(FlowDemand(f"f{i}", links, rate_cap=cap))
    return flows, capacities


@given(random_scenario())
@settings(max_examples=120, deadline=None)
def test_vectorized_matches_scalar_randomized(scenario):
    flows, capacities = scenario
    assert_allocations_match(flows, capacities)


@given(random_scenario())
@settings(max_examples=60, deadline=None)
def test_vectorized_rates_positive_and_complete(scenario):
    flows, capacities = scenario
    rates = max_min_fair_allocation(flows, capacities)
    assert set(rates) == {flow.flow_id for flow in flows}
    for rate in rates.values():
        assert rate > 0
