"""Tests for the synchronized BitTorrent broadcast simulation."""

import numpy as np
import pytest

from repro.bittorrent.swarm import BitTorrentBroadcast, SwarmConfig
from repro.bittorrent.torrent import TorrentMeta
from repro.network.grid5000 import build_flat_site
from repro.tomography.pipeline import default_swarm_config


class TestSwarmConfig:
    def test_validation(self):
        torrent = TorrentMeta.scaled(10)
        with pytest.raises(ValueError):
            SwarmConfig(torrent=torrent, control_dt=0.0)
        with pytest.raises(ValueError):
            SwarmConfig(torrent=torrent, control_dt=1.0, rechoke_interval=0.5)
        with pytest.raises(ValueError):
            SwarmConfig(torrent=torrent, max_sim_time=0.0)

    def test_default_swarm_config_scales_time_step(self):
        small = default_swarm_config(100)
        large = default_swarm_config(1000)
        assert large.control_dt > small.control_dt
        assert large.rechoke_interval > large.control_dt


class TestBroadcastValidation:
    def test_requires_at_least_two_hosts(self, dumbbell_topology, tiny_swarm_config):
        with pytest.raises(ValueError):
            BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config, hosts=["left-0"])

    def test_rejects_unknown_hosts(self, dumbbell_topology, tiny_swarm_config):
        with pytest.raises(ValueError):
            BitTorrentBroadcast(
                dumbbell_topology, tiny_swarm_config, hosts=["left-0", "ghost"]
            )

    def test_rejects_duplicate_hosts(self, dumbbell_topology, tiny_swarm_config):
        with pytest.raises(ValueError):
            BitTorrentBroadcast(
                dumbbell_topology, tiny_swarm_config, hosts=["left-0", "left-0"]
            )

    def test_rejects_root_outside_swarm(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(
            dumbbell_topology, tiny_swarm_config, hosts=["left-0", "left-1"]
        )
        with pytest.raises(ValueError):
            broadcast.run(root="right-0", rng=np.random.default_rng(0))


class TestBroadcastExecution:
    def test_every_peer_downloads_the_whole_file(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        result = broadcast.run(rng=np.random.default_rng(1))
        fragments = tiny_swarm_config.torrent.num_fragments
        hosts = dumbbell_topology.host_names
        # Every non-root peer received exactly `fragments` fragments in total.
        for host in hosts:
            if host == result.root:
                continue
            received = sum(result.fragments.received_by(host).values())
            assert received == pytest.approx(fragments)
        # The root received nothing (it started as the seed).
        assert sum(result.fragments.received_by(result.root).values()) == 0

    def test_total_fragment_conservation(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        result = broadcast.run(rng=np.random.default_rng(2))
        expected = tiny_swarm_config.torrent.num_fragments * (
            len(dumbbell_topology.host_names) - 1
        )
        assert result.fragments.total_fragments() == pytest.approx(expected)

    def test_completion_times_recorded_and_positive(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        result = broadcast.run(rng=np.random.default_rng(3))
        assert result.duration > 0
        for host, time in result.completion_times.items():
            if host == result.root:
                assert time == 0.0
            else:
                assert 0 < time <= result.duration + 1e-9

    def test_explicit_root_is_used(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        result = broadcast.run(root="right-2", rng=np.random.default_rng(4))
        assert result.root == "right-2"

    def test_reproducible_given_same_seed(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        a = broadcast.run(rng=np.random.default_rng(5))
        b = broadcast.run(rng=np.random.default_rng(5))
        assert np.array_equal(a.fragments.counts, b.fragments.counts)
        assert a.duration == pytest.approx(b.duration)

    def test_different_seeds_give_different_measurements(
        self, dumbbell_topology, tiny_swarm_config
    ):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        a = broadcast.run(rng=np.random.default_rng(6))
        b = broadcast.run(rng=np.random.default_rng(7))
        assert not np.array_equal(a.fragments.counts, b.fragments.counts)

    def test_intra_cluster_traffic_dominates_across_bottleneck(self, dumbbell_topology):
        """The core phenomenon: far more fragments flow inside clusters than across."""
        config = default_swarm_config(400)
        broadcast = BitTorrentBroadcast(dumbbell_topology, config)
        rng = np.random.default_rng(8)
        sym_total = None
        for i in range(4):
            result = broadcast.run(rng=rng)
            sym = result.fragments.symmetric_weights()
            sym_total = sym if sym_total is None else sym_total + sym
        labels = result.fragments.labels
        local = cross = 0.0
        for i, u in enumerate(labels):
            for j in range(i + 1, len(labels)):
                v = labels[j]
                same = u.split("-")[0] == v.split("-")[0]
                if same:
                    local += sym_total[i, j]
                else:
                    cross += sym_total[i, j]
        # Per-edge averages: intra-cluster edges should be much heavier.
        local_edges = 2 * 3  # 2 clusters x C(3,2)
        cross_edges = 9
        assert (local / local_edges) > 2.0 * (cross / cross_edges)

    def test_broadcast_duration_grows_with_file_size(self, dumbbell_topology):
        durations = []
        for fragments in (100, 400):
            config = default_swarm_config(fragments)
            broadcast = BitTorrentBroadcast(dumbbell_topology, config)
            result = broadcast.run(rng=np.random.default_rng(9))
            durations.append(result.duration)
        assert durations[1] > 1.5 * durations[0]

    def test_broadcast_roughly_insensitive_to_node_count(self):
        """O(M) behaviour: doubling the swarm size does not double the time."""
        durations = {}
        for count in (4, 8):
            topo = build_flat_site("grenoble", count)
            config = default_swarm_config(250)
            broadcast = BitTorrentBroadcast(topo, config)
            result = broadcast.run(rng=np.random.default_rng(10))
            durations[count] = result.duration
        assert durations[8] < 2.0 * durations[4]

    def test_distinct_edges_reported(self, dumbbell_topology, tiny_swarm_config):
        broadcast = BitTorrentBroadcast(dumbbell_topology, tiny_swarm_config)
        result = broadcast.run(rng=np.random.default_rng(11))
        n = len(dumbbell_topology.host_names)
        assert 0 < result.distinct_edges <= n * (n - 1) // 2

    def test_max_sim_time_guard(self, dumbbell_topology):
        config = SwarmConfig(
            torrent=TorrentMeta.scaled(4000),
            control_dt=0.01,
            rechoke_interval=0.05,
            max_sim_time=0.05,
        )
        broadcast = BitTorrentBroadcast(dumbbell_topology, config)
        with pytest.raises(RuntimeError):
            broadcast.run(rng=np.random.default_rng(12))

    def test_peer_set_limit_reduces_measured_edges(self):
        """With a tiny peer set, a single broadcast cannot cover all pairs."""
        topo = build_flat_site("grenoble", 12)
        config = default_swarm_config(200, max_peers=3)
        broadcast = BitTorrentBroadcast(topo, config)
        result = broadcast.run(rng=np.random.default_rng(13))
        n = len(topo.host_names)
        assert result.distinct_edges < n * (n - 1) // 2
