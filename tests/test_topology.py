"""Unit tests for the physical topology model."""

import pytest

from repro.network.topology import GBPS, MBPS, Host, Link, Switch, Topology, TopologyError


class TestLink:
    def test_capacity_must_be_positive(self):
        with pytest.raises(TopologyError):
            Link(a="x", b="y", capacity=0.0)

    def test_latency_must_be_non_negative(self):
        with pytest.raises(TopologyError):
            Link(a="x", b="y", capacity=1.0, latency=-1.0)

    def test_default_name(self):
        link = Link(a="x", b="y", capacity=1.0)
        assert link.name == "x--y"

    def test_other_endpoint(self):
        link = Link(a="x", b="y", capacity=1.0)
        assert link.other("x") == "y"
        assert link.other("y") == "x"
        with pytest.raises(TopologyError):
            link.other("z")

    def test_unit_constants(self):
        assert GBPS == pytest.approx(125e6)
        assert MBPS == pytest.approx(125e3)


class TestTopology:
    def test_duplicate_names_rejected(self):
        topo = Topology()
        topo.add_host(Host(name="n1"))
        with pytest.raises(TopologyError):
            topo.add_host(Host(name="n1"))
        with pytest.raises(TopologyError):
            topo.add_switch(Switch(name="n1"))

    def test_empty_name_rejected(self):
        topo = Topology()
        with pytest.raises(TopologyError):
            topo.add_host(Host(name=""))

    def test_link_requires_known_elements(self):
        topo = Topology()
        topo.add_host(Host(name="a"))
        with pytest.raises(TopologyError):
            topo.add_link("a", "ghost", capacity=1.0)

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_host(Host(name="a"))
        with pytest.raises(TopologyError):
            topo.add_link("a", "a", capacity=1.0)

    def test_duplicate_link_name_rejected(self):
        topo = Topology()
        topo.add_host(Host(name="a"))
        topo.add_host(Host(name="b"))
        topo.add_link("a", "b", capacity=1.0, name="l")
        with pytest.raises(TopologyError):
            topo.add_link("b", "a", capacity=1.0, name="l")

    def test_incident_links_and_neighbors(self, dumbbell_topology):
        links = dumbbell_topology.incident_links("sw-left")
        assert len(links) == 4  # 3 hosts + the bottleneck
        neighbors = dict(dumbbell_topology.neighbors("left-0"))
        assert set(neighbors) == {"sw-left"}

    def test_hosts_in_site_and_cluster(self, bordeaux_small):
        bordeplage = bordeaux_small.hosts_in_cluster("bordeaux", "bordeplage")
        assert len(bordeplage) == 4
        assert len(bordeaux_small.hosts_in_site("bordeaux")) == 8
        assert bordeaux_small.sites() == ["bordeaux"]

    def test_ground_truth_grouping_levels(self, bordeaux_small):
        by_site = bordeaux_small.ground_truth_by("site")
        assert set(by_site) == {"bordeaux"}
        by_cluster = bordeaux_small.ground_truth_by("cluster")
        assert set(by_cluster) == {
            "bordeaux/bordeplage",
            "bordeaux/bordereau",
            "bordeaux/borderline",
        }
        with pytest.raises(TopologyError):
            bordeaux_small.ground_truth_by("rack")

    def test_validate_connected_detects_islands(self):
        topo = Topology()
        topo.add_host(Host(name="a"))
        topo.add_host(Host(name="b"))
        with pytest.raises(TopologyError):
            topo.validate_connected()

    def test_validate_connected_passes_for_connected(self, dumbbell_topology):
        dumbbell_topology.validate_connected()

    def test_lookup_errors(self, dumbbell_topology):
        with pytest.raises(TopologyError):
            dumbbell_topology.host("nope")
        with pytest.raises(TopologyError):
            dumbbell_topology.link("nope")
        with pytest.raises(TopologyError):
            dumbbell_topology.incident_links("nope")

    def test_is_host_distinguishes_switches(self, dumbbell_topology):
        assert dumbbell_topology.is_host("left-0")
        assert not dumbbell_topology.is_host("sw-left")
        assert dumbbell_topology.has_element("sw-left")
