"""Unit and property tests for weighted Newman-Girvan modularity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.clustering.modularity import (
    modularity,
    modularity_gain_of_merge,
    modularity_matrix_form,
)
from repro.clustering.partition import Partition
from repro.graph.wgraph import WeightedGraph


class TestModularity:
    def test_two_cliques_score_high_when_split_correctly(self, two_community_graph):
        good = Partition([{f"l{i}" for i in range(4)}, {f"r{i}" for i in range(4)}])
        bad = Partition([
            {"l0", "l1", "r0", "r1"},
            {"l2", "l3", "r2", "r3"},
        ])
        assert modularity(two_community_graph, good) > modularity(two_community_graph, bad)
        assert modularity(two_community_graph, good) > 0.3

    def test_single_cluster_has_zero_modularity(self, two_community_graph):
        whole = Partition.whole(two_community_graph.nodes())
        assert modularity(two_community_graph, whole) == pytest.approx(0.0, abs=1e-12)

    def test_zero_weight_graph_rejected(self):
        graph = WeightedGraph()
        graph.add_node("a")
        graph.add_node("b")
        with pytest.raises(ValueError):
            modularity(graph, Partition.whole(["a", "b"]))

    def test_node_missing_from_partition_raises(self, two_community_graph):
        partial = Partition([{f"l{i}" for i in range(4)}])
        with pytest.raises(KeyError):
            modularity(two_community_graph, partial)

    def test_matches_matrix_formulation(self, two_community_graph):
        partition = Partition([{f"l{i}" for i in range(4)}, {f"r{i}" for i in range(4)}])
        matrix, labels = two_community_graph.to_weight_matrix()
        a = modularity(two_community_graph, partition)
        b = modularity_matrix_form(matrix, labels, partition)
        assert a == pytest.approx(b, abs=1e-9)

    def test_matrix_form_validation(self):
        with pytest.raises(ValueError):
            modularity_matrix_form(np.zeros((2, 3)), ["a", "b"], Partition.whole(["a", "b"]))
        with pytest.raises(ValueError):
            modularity_matrix_form(
                np.array([[0.0, 1.0], [2.0, 0.0]]), ["a", "b"], Partition.whole(["a", "b"])
            )

    def test_merge_gain_matches_direct_difference(self, two_community_graph):
        singles = Partition.singletons(two_community_graph.nodes())
        gain = modularity_gain_of_merge(two_community_graph, singles, 0, 1)
        clusters = list(singles.clusters)
        merged = Partition([clusters[0] | clusters[1]] + clusters[2:])
        direct = modularity(two_community_graph, merged) - modularity(
            two_community_graph, singles
        )
        assert gain == pytest.approx(direct, abs=1e-12)
        assert modularity_gain_of_merge(two_community_graph, singles, 2, 2) == 0.0


@st.composite
def graph_and_partition(draw):
    n = draw(st.integers(min_value=3, max_value=10))
    nodes = list(range(n))
    edges = []
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                edges.append((i, j, draw(st.floats(min_value=0.1, max_value=10.0))))
    if not edges:
        edges.append((0, 1, 1.0))
    graph = WeightedGraph.from_edges(edges, nodes=nodes)
    membership = {node: draw(st.integers(min_value=0, max_value=3)) for node in nodes}
    return graph, Partition.from_membership(membership)


@given(graph_and_partition())
@settings(max_examples=60, deadline=None)
def test_modularity_is_bounded(data):
    graph, partition = data
    q = modularity(graph, partition)
    assert -1.0 <= q <= 1.0


@given(graph_and_partition())
@settings(max_examples=60, deadline=None)
def test_modularity_agrees_with_matrix_form(data):
    graph, partition = data
    matrix, labels = graph.to_weight_matrix()
    assert modularity(graph, partition) == pytest.approx(
        modularity_matrix_form(matrix, labels, partition), abs=1e-8
    )


@given(graph_and_partition())
@settings(max_examples=40, deadline=None)
def test_single_community_always_zero(data):
    graph, _ = data
    whole = Partition.whole(graph.nodes())
    assert modularity(graph, whole) == pytest.approx(0.0, abs=1e-9)
