"""Unit and property tests for max-min fair bandwidth allocation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network.flows import (
    FlowDemand,
    link_utilisation,
    max_min_fair_allocation,
    validate_allocation,
)


class TestBasicAllocation:
    def test_single_flow_gets_bottleneck_capacity(self):
        flows = [FlowDemand("f", ("l1", "l2"))]
        rates = max_min_fair_allocation(flows, {"l1": 100.0, "l2": 40.0})
        assert rates["f"] == pytest.approx(40.0)

    def test_two_flows_share_a_link_equally(self):
        flows = [FlowDemand("a", ("shared",)), FlowDemand("b", ("shared",))]
        rates = max_min_fair_allocation(flows, {"shared": 100.0})
        assert rates["a"] == pytest.approx(50.0)
        assert rates["b"] == pytest.approx(50.0)

    def test_unequal_paths_give_max_min_solution(self):
        # Classic example: flow A uses links 1+2, flow B only link 1, flow C only link 2.
        flows = [
            FlowDemand("a", ("l1", "l2")),
            FlowDemand("b", ("l1",)),
            FlowDemand("c", ("l2",)),
        ]
        rates = max_min_fair_allocation(flows, {"l1": 10.0, "l2": 10.0})
        assert rates["a"] == pytest.approx(5.0)
        assert rates["b"] == pytest.approx(5.0)
        assert rates["c"] == pytest.approx(5.0)

    def test_freed_capacity_goes_to_unconstrained_flows(self):
        flows = [
            FlowDemand("a", ("narrow", "wide")),
            FlowDemand("b", ("wide",)),
        ]
        rates = max_min_fair_allocation(flows, {"narrow": 2.0, "wide": 10.0})
        assert rates["a"] == pytest.approx(2.0)
        assert rates["b"] == pytest.approx(8.0)

    def test_rate_cap_is_respected(self):
        flows = [FlowDemand("a", ("l",), rate_cap=3.0), FlowDemand("b", ("l",))]
        rates = max_min_fair_allocation(flows, {"l": 10.0})
        assert rates["a"] == pytest.approx(3.0)
        assert rates["b"] == pytest.approx(7.0)

    def test_flow_without_links_or_cap_is_unbounded(self):
        flows = [FlowDemand("loop", ())]
        rates = max_min_fair_allocation(flows, {})
        assert rates["loop"] == float("inf")

    def test_flow_without_links_with_cap(self):
        flows = [FlowDemand("loop", (), rate_cap=5.0)]
        rates = max_min_fair_allocation(flows, {})
        assert rates["loop"] == pytest.approx(5.0)

    def test_empty_flow_list(self):
        assert max_min_fair_allocation([], {"l": 1.0}) == {}

    def test_unknown_link_raises(self):
        with pytest.raises(KeyError):
            max_min_fair_allocation([FlowDemand("a", ("ghost",))], {"l": 1.0})

    def test_non_positive_capacity_raises(self):
        with pytest.raises(ValueError):
            max_min_fair_allocation([FlowDemand("a", ("l",))], {"l": 0.0})

    def test_duplicate_flow_ids_raise(self):
        flows = [FlowDemand("a", ("l",)), FlowDemand("a", ("l",))]
        with pytest.raises(ValueError):
            max_min_fair_allocation(flows, {"l": 1.0})

    def test_invalid_rate_cap_rejected(self):
        with pytest.raises(ValueError):
            FlowDemand("a", ("l",), rate_cap=0.0)

    def test_many_flows_through_bottleneck(self):
        n = 32
        flows = [FlowDemand(f"f{i}", ("access" + str(i), "bottleneck")) for i in range(n)]
        capacities = {"bottleneck": 125e6}
        capacities.update({f"access{i}": 111e6 for i in range(n)})
        rates = max_min_fair_allocation(flows, capacities)
        for rate in rates.values():
            assert rate == pytest.approx(125e6 / n, rel=1e-6)

    def test_link_utilisation(self):
        flows = [FlowDemand("a", ("l",)), FlowDemand("b", ("l",))]
        rates = max_min_fair_allocation(flows, {"l": 10.0})
        util = link_utilisation(flows, rates, {"l": 10.0})
        assert util["l"] == pytest.approx(1.0)


# --------------------------------------------------------------------- #
# property-based tests
# --------------------------------------------------------------------- #
@st.composite
def random_scenario(draw):
    num_links = draw(st.integers(min_value=1, max_value=6))
    link_names = [f"L{i}" for i in range(num_links)]
    capacities = {
        name: draw(st.floats(min_value=1.0, max_value=1000.0)) for name in link_names
    }
    num_flows = draw(st.integers(min_value=1, max_value=10))
    flows = []
    for i in range(num_flows):
        k = draw(st.integers(min_value=1, max_value=num_links))
        links = tuple(draw(st.permutations(link_names))[:k])
        cap = draw(st.one_of(st.none(), st.floats(min_value=0.5, max_value=500.0)))
        flows.append(FlowDemand(f"f{i}", links, rate_cap=cap))
    return flows, capacities


@given(random_scenario())
@settings(max_examples=80, deadline=None)
def test_allocation_is_always_feasible(scenario):
    flows, capacities = scenario
    rates = max_min_fair_allocation(flows, capacities)
    validate_allocation(flows, rates, capacities)


@given(random_scenario())
@settings(max_examples=80, deadline=None)
def test_allocation_rates_are_positive(scenario):
    flows, capacities = scenario
    rates = max_min_fair_allocation(flows, capacities)
    assert set(rates) == {f.flow_id for f in flows}
    for rate in rates.values():
        assert rate > 0


@given(random_scenario())
@settings(max_examples=60, deadline=None)
def test_every_flow_hits_a_binding_constraint(scenario):
    """Max-min property: each flow is limited by a saturated link or its cap."""
    flows, capacities = scenario
    rates = max_min_fair_allocation(flows, capacities)
    utilisation = link_utilisation(flows, rates, capacities)
    for flow in flows:
        rate = rates[flow.flow_id]
        capped = flow.rate_cap is not None and rate >= flow.rate_cap - 1e-6
        on_saturated_link = any(
            utilisation[link] >= 1.0 - 1e-6 for link in set(flow.links)
        )
        unbounded = not flow.links and flow.rate_cap is None
        assert capped or on_saturated_link or unbounded
